"""The statement grouping graph and the grouping decision loop —
steps 3 and 4 of the basic grouping algorithm (Section 4.2.1, Figure 10).

Each edge of the statement grouping graph (SG) is a candidate group; its
weight estimates the *global* superword-reuse benefit of committing to
that group, computed on an auxiliary graph extracted from the variable
pack conflicting graph:

1. collect every VP node whose pack data matches one of the candidate's
   packs and whose originating candidate does not conflict with it;
2. resolve residual conflicts greedily (repeatedly drop the
   highest-degree node) until the auxiliary graph has no edges;
3. combine the surviving packs with the candidate's own packs and the
   packs of already-decided groups, and score
   ``W = sum_over_pack_types(N_type - 1) / Nt`` where ``Nt`` is the
   number of distinct pack types among the decided groups and the
   candidate (the paper's "average reuse", e.g. 2/3 in Figure 6).

The decision loop then repeatedly commits the heaviest edge, removes the
candidates it conflicts with from both graphs, and recomputes weights.

Two engines implement that loop with **bit-identical decisions**:

* ``engine="incremental"`` (default) memoizes each candidate's pack
  tuple, auxiliary-graph counts, score, and weight, and after every
  commit invalidates only the *dirty set* — candidates conflicting with
  the committed group are removed outright, and candidates sharing a
  pack type with any removed candidate get their caches dropped and a
  fresh entry pushed onto a lazy max-heap. Everything else keeps its
  cached score, so a decision costs work proportional to the dirty set,
  not to the number of active candidates.
* ``engine="reference"`` recomputes every active candidate's score from
  scratch on every iteration — the paper-literal loop, kept as the
  differential-testing oracle and the baseline the compile-time
  benchmarks measure the incremental engine against.

Why the dirty-set rule is sufficient: a candidate's score depends only
on (a) VP nodes whose data matches one of its pack types, (b) decided
packs matching one of its pack types, and (c) its own static packs. A
commit changes (a) only by removing nodes of removed candidates and (b)
only by appending the committed candidate's packs — both covered by
``touched_data``, the union of pack types of the committed and removed
candidates. A candidate sharing no pack type with ``touched_data``
therefore computes exactly the same counts as before.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..engines import engine_names, resolve as resolve_engine_impl
from ..errors import Diagnostic, OptionsError
from ..analysis import DependenceGraph
from ..analysis.operands import KIND_CONST, KIND_REF, KIND_VAR
from ..ir import Affine
from ..ir.expr import OP_WEIGHTS
from ..perf import count, section
from .candidates import find_candidates
from ..trace import TRACE, provenance_id
from .conflict import PackNode, VariablePackGraph
from .model import CandidateGroup, GroupNode, PackData

DeclLookup = Callable[[str], object]

#: Packing-cost constants for the decision score, in vector-op units,
#: calibrated to the machine models' deltas for two lanes:
#: * a strided/mixed memory gather costs lanes x (load + insert) against
#:   one wide load: ~3 extra;
#: * building a non-contiguous scalar pack costs lanes x (move + insert)
#:   against a contiguous arena load: ~2 extra;
#: * scattering a result to non-contiguous scalar slots costs
#:   lanes x (extract + move) against one arena store: ~1-2 extra.
GATHER_PENALTY = 3.0
SCALAR_GATHER_PENALTY = 2.0
SCALAR_SCATTER_PENALTY = 1.0
#: Residual penalty when the data layout stage is known to follow and
#: can rewrite this pack into a contiguous access (read-only array
#: replication, Section 5.2, or scalar offset assignment, Section 5.1):
#: only the amortized copy/arena cost remains.
LAYOUT_FIXABLE_PENALTY = 0.25

#: Engines for the decision loop, in registration order (the registry
#: in :mod:`repro.engines` is the source of truth; this tuple is kept
#: for backward compatibility).
ENGINES = engine_names("grouping")


@dataclass(frozen=True, slots=True)
class PenaltyContext:
    """What the code generator and downstream stages will see, for
    cost-aware grouping.

    ``replicable_arrays`` — read-only arrays eligible for replication
    when the layout stage runs (None: layout will not run).
    ``scalar_slots`` — the scalar arena slots codegen will use
    (``name -> (type name, offset)``); when the layout stage runs its
    offset assignment, leave this None (slots are then optimizable).
    """

    replicable_arrays: Optional[frozenset] = None
    scalar_slots: Optional[Tuple[Tuple[str, Tuple[str, int]], ...]] = None

    @property
    def assume_layout(self) -> bool:
        return self.replicable_arrays is not None

    def slot_of(self, name: str) -> Optional[Tuple[str, int]]:
        if self.scalar_slots is None:
            return None
        for entry, slot in self.scalar_slots:
            if entry == name:
                return slot
        return None

    @staticmethod
    def from_arenas(arenas) -> Tuple[Tuple[str, Tuple[str, int]], ...]:
        """Flatten ``{type: ScalarArena}`` into the slots tuple."""
        slots = []
        for type_name, arena in arenas.items():
            for name, offset in arena.slots.items():
                slots.append((name, (type_name, offset)))
        return tuple(sorted(slots))


def _scalar_pack_contiguous(
    pack: PackData, context: Optional[PenaltyContext]
) -> bool:
    """Whether the scalar pack occupies consecutive arena slots (in some
    lane order) under the known scalar layout."""
    if context is None or context.scalar_slots is None:
        return False
    slots = []
    for key in pack:
        slot = context.slot_of(key[1])
        if slot is None:
            return False
        slots.append(slot)
    types = {t for t, _ in slots}
    if len(types) != 1:
        return False
    offsets = sorted(offset for _, offset in slots)
    return offsets == list(range(offsets[0], offsets[0] + len(offsets)))


def pack_is_contiguous_memory(
    pack: PackData, decl_of: Optional[DeclLookup]
) -> bool:
    """Whether the pack's lanes are consecutive elements of one array
    (in some lane order)."""
    if not all(key[0] == KIND_REF for key in pack):
        return False
    arrays = {key[1] for key in pack}
    if len(arrays) != 1:
        return False
    flats = []
    for key in pack:
        subscripts = key[2]
        decl = decl_of(key[1]) if decl_of is not None else None
        if decl is not None:
            shape = decl.shape
        elif len(subscripts) == 1:
            shape = (0,)
        else:
            return False
        flat = Affine((), 0)
        for subscript, dim in zip(subscripts, shape):
            flat = flat * dim + subscript
        flats.append(flat)
    flats.sort()
    base = flats[0]
    for lane, flat in enumerate(flats):
        delta = flat - base
        if not (delta.is_constant and delta.const == lane):
            return False
    return True


def pack_adjacency_score(
    pack: PackData,
    decl_of: Optional[DeclLookup],
    contiguous: Optional[bool] = None,
) -> int:
    """Static desirability of a pack absent any reuse: contiguous memory
    (one wide load/store) scores 2, a splat (all lanes equal) scores 1,
    anything else 0. Used as a tie-break between equal-weight
    candidates (the paper chooses randomly there). ``contiguous``
    optionally supplies a precomputed ``pack_is_contiguous_memory``
    answer so memoizing callers pay for that analysis once per pack."""
    if len(set(pack)) == 1:
        return 1
    if contiguous is None:
        contiguous = pack_is_contiguous_memory(pack, decl_of)
    if contiguous:
        return 2
    return 0


def pack_materialization_penalty(
    pack: PackData,
    decl_of: Optional[DeclLookup],
    context: Optional[PenaltyContext] = None,
    is_store: bool = False,
    contiguous: Optional[bool] = None,
) -> float:
    """Overhead of building (or scattering, for ``is_store``) this pack
    when nothing in the block reuses it, relative to a contiguous wide
    access. When a :class:`PenaltyContext` says the layout stage will
    run, source packs it can make contiguous (read-only array
    replication, scalar offset assignment) are almost free — the phase
    coupling that lets Global+Layout choose the reuse-maximizing
    grouping the layout stage then repairs."""
    if len(set(pack)) == 1:
        return 0.0  # splat: one broadcast
    kinds = {key[0] for key in pack}
    if kinds == {KIND_CONST}:
        return 0.0  # vector immediate, hoisted out of the loop
    if kinds == {KIND_REF}:
        if contiguous is None:
            contiguous = pack_is_contiguous_memory(pack, decl_of)
        if contiguous:
            return 0.0
        if (
            not is_store
            and context is not None
            and context.replicable_arrays is not None
            and all(key[1] in context.replicable_arrays for key in pack)
        ):
            return LAYOUT_FIXABLE_PENALTY
        return GATHER_PENALTY
    if kinds == {KIND_VAR}:
        if _scalar_pack_contiguous(pack, context):
            return 0.0
        if context is not None and context.assume_layout:
            return LAYOUT_FIXABLE_PENALTY
        return SCALAR_SCATTER_PENALTY if is_store else SCALAR_GATHER_PENALTY
    return GATHER_PENALTY  # mixed lane sources: per-lane inserts


def pack_reuse_saving(
    pack: PackData,
    decl_of: Optional[DeclLookup],
    context: Optional[PenaltyContext] = None,
    contiguous: Optional[bool] = None,
) -> float:
    """What one *reuse* of this pack saves, in vector-op units: the cost
    of the materialization it avoids. A constant vector is hoisted out
    of the loop and costs nothing per iteration, so reusing it saves
    nothing; a strided gather it saves almost entirely (unless the
    layout stage will make that gather cheap anyway)."""
    kinds = {key[0] for key in pack}
    if kinds == {KIND_CONST}:
        return 0.0
    if len(set(pack)) == 1:
        return 0.5  # a broadcast
    if kinds == {KIND_REF}:
        if contiguous is None:
            contiguous = pack_is_contiguous_memory(pack, decl_of)
        if contiguous:
            return 1.0  # one wide load
        if (
            context is not None
            and context.replicable_arrays is not None
            and all(key[1] in context.replicable_arrays for key in pack)
        ):
            return 1.0  # replication will make it one wide load
        return GATHER_PENALTY
    if kinds == {KIND_VAR}:
        if _scalar_pack_contiguous(pack, context):
            return 1.0
        # Half the avoided scalar-gather cost: consumers of the same
        # pack share one materialization (the code generator keeps it
        # live), so per-occurrence credit at full cost would double
        # count.
        return 1.5
    return GATHER_PENALTY


def candidate_adjacency_score(
    candidate: CandidateGroup, decl_of: Optional[DeclLookup]
) -> int:
    return sum(
        pack_adjacency_score(pack, decl_of) for pack in candidate.packs
    )


class PackCostModel:
    """Memoized pack-cost queries for one ``(decl_of, penalty_context)``
    pair.

    ``pack_reuse_saving`` / ``pack_materialization_penalty`` (and their
    ``Fraction(...).limit_denominator(8)`` wrappers) and
    ``pack_adjacency_score`` depend only on the pack data once the
    declaration lookup and penalty context are fixed, so one cache can
    serve every grouping round of a block — the rounds re-derive wider
    packs, but any pack they share with an earlier round is a hit.
    """

    __slots__ = (
        "decl_of", "context", "_saving", "_build", "_adjacency", "_contig",
    )

    def __init__(
        self,
        decl_of: Optional[DeclLookup] = None,
        context: Optional[PenaltyContext] = None,
    ):
        self.decl_of = decl_of
        self.context = context
        self._saving: Dict[PackData, Fraction] = {}
        self._build: Dict[Tuple[PackData, bool], Fraction] = {}
        self._adjacency: Dict[PackData, int] = {}
        self._contig: Dict[PackData, bool] = {}

    def contiguous(self, data: PackData) -> bool:
        cached = self._contig.get(data)
        if cached is None:
            cached = self._contig[data] = pack_is_contiguous_memory(
                data, self.decl_of
            )
        return cached

    def saving(self, data: PackData) -> Fraction:
        cached = self._saving.get(data)
        if cached is None:
            cached = Fraction(
                pack_reuse_saving(
                    data, self.decl_of, self.context,
                    contiguous=self.contiguous(data),
                )
            ).limit_denominator(8)
            self._saving[data] = cached
        else:
            count("grouping.pack_cost_cache_hits")
        return cached

    def build(self, data: PackData, is_store: bool = False) -> Fraction:
        key = (data, is_store)
        cached = self._build.get(key)
        if cached is None:
            cached = Fraction(
                pack_materialization_penalty(
                    data, self.decl_of, self.context, is_store=is_store,
                    contiguous=self.contiguous(data),
                )
            ).limit_denominator(8)
            self._build[key] = cached
        else:
            count("grouping.pack_cost_cache_hits")
        return cached

    def adjacency(self, data: PackData) -> int:
        cached = self._adjacency.get(data)
        if cached is None:
            cached = self._adjacency[data] = pack_adjacency_score(
                data, self.decl_of, contiguous=self.contiguous(data)
            )
        return cached


def _signature_op_cost(signature) -> float:
    """Total operator weight of one lane's expression shape, extracted
    from an isomorphism signature."""
    if not isinstance(signature, tuple) or not signature:
        return 0.0
    label = signature[0]
    if label == "leaf":
        return 0.0
    cost = float(OP_WEIGHTS.get(label, 0.0))
    for child in signature[2:]:
        cost += _signature_op_cost(child)
    return cost


def candidate_op_saving(candidate: CandidateGroup) -> float:
    """ALU work a merge saves per loop iteration: the two units' op
    streams become one SIMD stream, eliminating one full copy of the
    shared expression shape's operator cost."""
    _target_kind, _pred_kind, expr_signature = candidate.left.signature
    return _signature_op_cost(expr_signature)


@dataclass
class GroupingTrace:
    """Optional record of each decision, for tests and debugging.

    ``engine`` names the engine that produced it, ``objective`` its
    whole-selection packing value (see
    :meth:`BasicGrouping.selection_objective`), ``proven_optimal``
    whether a completed exact search certified the selection, and
    ``nodes_explored`` the search effort (0 for the greedy engines).
    """

    decisions: List[Tuple[CandidateGroup, Fraction]]
    engine: str = "incremental"
    objective: Optional[Fraction] = None
    proven_optimal: bool = False
    nodes_explored: int = 0

    def chosen_sids(self) -> List[Tuple[int, ...]]:
        return [tuple(sorted(c.sid_set)) for c, _ in self.decisions]


def eliminate_conflicts(
    nodes: Sequence[PackNode],
    adjacency: Dict[PackNode, Set[PackNode]],
) -> List[PackNode]:
    """Greedy conflict elimination: repeatedly remove the highest-degree
    node until no edges remain (Figure 7). Deterministic tie-breaking on
    the node's canonical key keeps the whole optimizer reproducible.

    The canonical keys contain whole pack tuples, so comparing them
    directly on every victim selection dominated the decision loop; one
    up-front sort assigns each node an integer rank with the same order,
    and the selection loop compares ``(degree, rank)`` pairs instead —
    byte-for-byte the same victim sequence.
    """
    alive: Set[PackNode] = set(nodes)
    degree = {n: len(adjacency.get(n, set()) & alive) for n in alive}
    order = sorted(
        alive, key=lambda n: (n.data, n.candidate_index, n.position)
    )
    rank = {n: i for i, n in enumerate(order)}
    conflicted = {n for n in alive if degree[n] > 0}
    while conflicted:
        victim = max(conflicted, key=lambda n: (degree[n], rank[n]))
        alive.discard(victim)
        conflicted.discard(victim)
        for neighbor in adjacency.get(victim, set()):
            if neighbor in alive:
                left = degree[neighbor] - 1
                degree[neighbor] = left
                if left == 0:
                    conflicted.discard(neighbor)
    return [n for n in order if n in alive]


class BasicGrouping:
    """One round of the basic grouping algorithm over a set of units."""

    def __init__(
        self,
        units: Sequence[GroupNode],
        deps: DependenceGraph,
        datapath_bits: int,
        decl_of: Optional[DeclLookup] = None,
        penalty_context: Optional[PenaltyContext] = None,
        decision_mode: str = "cost-aware",
        engine: str = "incremental",
        cost_model: Optional[PackCostModel] = None,
        *,
        engine_options: Optional[dict] = None,
        on_diagnostic: Optional[Callable[[Diagnostic], None]] = None,
    ):
        if decision_mode not in ("cost-aware", "weight-only"):
            raise OptionsError(f"unknown decision mode {decision_mode!r}")
        self._engine_impl = resolve_engine_impl("grouping", engine)
        if cost_model is not None and (
            cost_model.decl_of is not decl_of
            or cost_model.context != penalty_context
        ):
            raise OptionsError(
                "cost_model was built for a different decl_of/context"
            )
        self.units = list(units)
        self.deps = deps
        self.datapath_bits = datapath_bits
        self.engine = engine
        self.candidates = find_candidates(self.units, deps, datapath_bits)
        count("grouping.candidates_examined", len(self.candidates))
        # Per-candidate static precomputes: the merged group node (so
        # ``CandidateGroup.packs`` — a property that re-merges on every
        # access — is materialized exactly once per candidate), the pack
        # tuple, its distinct pack types both as a frozenset (dirty-set
        # intersections) and sorted (deterministic auxiliary-graph
        # iteration order).
        self._merged: List[GroupNode] = [c.merged() for c in self.candidates]
        self._packs: List[Tuple[PackData, ...]] = [
            node.positions for node in self._merged
        ]
        self._pack_sets: List[frozenset] = [
            frozenset(packs) for packs in self._packs
        ]
        self._sorted_pack_types: List[Tuple[PackData, ...]] = [
            tuple(sorted(types)) for types in self._pack_sets
        ]
        # Integer-slot views of each candidate's pack types: the weight
        # and score loops index small lists instead of hashing PackData
        # tuples (whose Affine subscripts make hashing and comparison
        # slow) on every recomputation.
        self._type_slot: List[Dict[PackData, int]] = [
            {data: slot for slot, data in enumerate(types)}
            for types in self._sorted_pack_types
        ]
        self._own_list: List[List[int]] = []
        self._target_slot: List[int] = []
        for slot_of, packs in zip(self._type_slot, self._packs):
            own = [0] * len(slot_of)
            for data in packs:
                own[slot_of[data]] += 1
            self._own_list.append(own)
            self._target_slot.append(slot_of[packs[0]])
        self._cost_rows: List[Optional[tuple]] = [None] * len(
            self.candidates
        )
        self._fcost_rows: List[Optional[tuple]] = [None] * len(
            self.candidates
        )
        # Multiset of decided groups' packs, maintained by ``_commit``
        # (the public ``weight``/``score`` entry points instead rebuild
        # it from ``decided_packs`` so direct mutation stays visible).
        self._decided_counts: Dict[PackData, int] = {}
        self.vp = VariablePackGraph(self.candidates, deps)
        self.active: Set[int] = set(range(len(self.candidates)))
        self.decided: List[int] = []
        self.decided_packs: List[PackData] = []
        self._decl_of = decl_of
        self._penalty_context = penalty_context
        self.decision_mode = decision_mode
        self.engine_options = engine_options
        self.on_diagnostic = on_diagnostic
        self.cost = cost_model or PackCostModel(decl_of, penalty_context)
        adjacency_of = self.cost.adjacency
        self.adjacency = [
            sum(adjacency_of(p) for p in packs) for packs in self._packs
        ]
        self._op_saving_frac: Dict[int, Fraction] = {}
        self._ref_pack_bonus: Dict[int, int] = {}

    # -- cached static pack costs ----------------------------------------------

    def _static_bonus(self, index: int) -> Tuple[Fraction, int]:
        """The candidate's reuse-independent score terms: the saved ALU
        work of the merge, and +1 per all-memory pack position."""
        op = self._op_saving_frac.get(index)
        if op is None:
            op = Fraction(
                candidate_op_saving(self.candidates[index])
            ).limit_denominator(8)
            self._op_saving_frac[index] = op
        bonus = self._ref_pack_bonus.get(index)
        if bonus is None:
            bonus = sum(
                1
                for data in self._packs[index]
                if all(key[0] == KIND_REF for key in data)
            )
            self._ref_pack_bonus[index] = bonus
        return op, bonus

    # -- weight computation (Figure 10 lines 22–38) ---------------------------

    @staticmethod
    def _eliminate_aux_conflicts(
        by_cand: Dict[int, List[PackNode]],
        masks: Dict[int, int],
        rank: Dict[PackNode, int],
    ) -> List[PackNode]:
        """Greedy conflict elimination over the auxiliary graph, exploiting
        its structure: every node of one candidate has the *same* neighbor
        set (all nodes of conflicting candidates), hence the same degree.
        Selecting the victim candidate by ``(degree, best node rank)`` and
        popping that candidate's highest-ranked node therefore reproduces
        :func:`eliminate_conflicts` over the expanded node graph victim for
        victim, without materializing per-node adjacency sets or comparing
        pack tuples (``rank`` is the graph's precomputed canonical node
        order). Requires each bucket in ascending canonical order — which
        the collection loop in :meth:`_counts_list` guarantees (sorted pack
        types outermost, node position ascending within). Mutates
        ``by_cand`` in place and returns the victims.
        """
        # Dense local renumbering: the selection loop then runs on plain
        # lists with integer indices instead of dicts keyed by global
        # candidate numbers.
        cands = list(by_cand)
        pos = {cand: i for i, cand in enumerate(cands)}
        n = len(cands)
        buckets = [by_cand[cand] for cand in cands]
        sizes = [len(bucket) for bucket in buckets]
        local_mask = [0] * n
        deg = [0] * n
        for i, cand in enumerate(cands):
            mask = masks[cand]
            local = 0
            total = 0
            while mask:
                low = mask & -mask
                mask ^= low
                j = pos[low.bit_length() - 1]
                local |= 1 << j
                total += sizes[j]
            local_mask[i] = local
            deg[i] = total
        last_rank = [
            rank[bucket[-1]] if bucket else -1 for bucket in buckets
        ]
        victims: List[PackNode] = []
        while True:
            # One scan finds the victim candidate (max degree, then max
            # last-node rank) and the runner-up degree.
            best_i = -1
            best_deg = 0
            best_rank = -1
            second_deg = 0
            for i in range(n):
                d = deg[i]
                if d <= 0:
                    continue
                if d > best_deg:
                    second_deg = best_deg
                    best_deg = d
                    best_i = i
                    best_rank = last_rank[i]
                elif d == best_deg:
                    second_deg = d
                    if last_rank[i] > best_rank:
                        best_i = i
                        best_rank = last_rank[i]
                elif d > second_deg:
                    second_deg = d
            if best_i < 0:
                return victims
            bucket = buckets[best_i]
            if best_deg > second_deg:
                # Strictly maximal degree: removing the candidate's own
                # nodes never changes its degree, and every other degree
                # only decreases — so the greedy drains this whole bucket
                # (descending rank) before looking anywhere else.
                removed = len(bucket)
                victims.extend(reversed(bucket))
                bucket.clear()
                deg[best_i] = 0
            else:
                removed = 1
                victims.append(bucket.pop())
                if bucket:
                    last_rank[best_i] = rank[bucket[-1]]
                else:
                    deg[best_i] = 0
            mask = local_mask[best_i]
            while mask:
                low = mask & -mask
                mask ^= low
                j = low.bit_length() - 1
                deg[j] -= removed

    def _counts_list(
        self,
        index: int,
        decided_counts: Dict[PackData, int],
        eliminate: bool = True,
    ) -> List[int]:
        """Occurrence counts of the candidate's pack types — across the
        surviving auxiliary-graph nodes, the decided groups' packs
        (``decided_counts`` multiset) and the candidate itself — as a
        list aligned with ``self._sorted_pack_types[index]``.

        With ``eliminate=False`` the residual-conflict elimination is
        skipped, yielding per-slot counts that can only be *higher* than
        the exact ones — an upper bound the incremental engine uses for
        lazily-refined heap entries (both weight and score are monotone
        nondecreasing in every count).
        """
        types = self._sorted_pack_types[index]
        counts = [0] * len(types)
        vp = self.vp
        my_conflicts = vp.conflict_bits(index)
        aux_mask = 0
        by_cand: Dict[int, List[PackNode]] = {}
        for slot, data in enumerate(types):
            for node in vp.iter_nodes_with_data(data):
                other = node.candidate_index
                if other == index or (my_conflicts >> other) & 1:
                    continue
                counts[slot] += 1
                bucket = by_cand.get(other)
                if bucket is None:
                    by_cand[other] = [node]
                    aux_mask |= 1 << other
                else:
                    bucket.append(node)

        if eliminate:
            # Residual conflicts among the auxiliary candidates, as
            # bitmasks over the auxiliary set. When there are none (the
            # common case), greedy elimination would keep every node and
            # the collected counts already stand.
            masks = {
                cand: vp.conflict_bits(cand) & aux_mask
                for cand in by_cand
            }
            if any(masks.values()):
                slot_of = self._type_slot[index]
                for victim in self._eliminate_aux_conflicts(
                    by_cand, masks, vp.node_rank
                ):
                    counts[slot_of[victim.data]] -= 1

        own = self._own_list[index]
        for slot, data in enumerate(types):
            extra = decided_counts.get(data)
            counts[slot] += own[slot] if extra is None else own[slot] + extra
        return counts

    def _decided_multiset(self) -> Dict[PackData, int]:
        """``decided_packs`` as a multiset — rebuilt fresh so callers of
        the public entry points see direct mutations of the list."""
        decided: Dict[PackData, int] = {}
        for data in self.decided_packs:
            decided[data] = decided.get(data, 0) + 1
        return decided

    def _pack_counts(
        self, index: int
    ) -> Tuple[Dict[PackData, int], Dict[PackData, int]]:
        """Occurrence counts of the candidate's pack types across the
        surviving auxiliary-graph nodes, the decided groups' packs, and
        the candidate itself; plus the candidate-internal counts.

        Always computed fresh — callers that can reuse counts across
        queries (the decision loop) memoize the result themselves, so
        direct users (tests, ``explain``) see the live graph state even
        after mutating ``decided_packs`` by hand.
        """
        types = self._sorted_pack_types[index]
        counts_list = self._counts_list(index, self._decided_multiset())
        own_list = self._own_list[index]
        counts = {data: counts_list[t] for t, data in enumerate(types)}
        own_counts = {data: own_list[t] for t, data in enumerate(types)}
        return counts, own_counts

    @staticmethod
    def _weight_from_counts(counts: Dict[PackData, int]) -> Fraction:
        reuse = sum(c - 1 for c in counts.values())
        return Fraction(reuse, len(counts))

    @staticmethod
    def _weight_from_list(counts: List[int]) -> Fraction:
        return Fraction(sum(counts) - len(counts), len(counts))

    def weight(self, index: int) -> Fraction:
        """The paper's average superword reuse (Figure 10 lines 32–38).

        Collect every VP pack node whose data matches one of the
        candidate's packs and whose originating candidate does not
        conflict with it; greedily eliminate residual conflicts; then
        for each of the candidate's pack types count its occurrences
        across the surviving nodes, the already-decided groups' packs,
        and the candidate itself — each extra occurrence is one saved
        packing operation. ``W = sum(N_t - 1) / Nt`` with ``Nt`` the
        candidate's pack-type count reproduces the paper's 2/3 for
        {S4,S5} in Figure 6 and "considers the already-decided group
        together" after each decision (Section 4.2.1).
        """
        return self._weight_from_list(
            self._counts_list(index, self._decided_multiset())
        )

    def _cost_row(
        self, index: int
    ) -> Tuple[List[Fraction], List[Fraction], int, Fraction]:
        """Per-slot reuse savings and materialization penalties for one
        candidate, plus its target slot and the target's store penalty —
        computed once so score recomputations are pure Fraction
        arithmetic over integer slots."""
        row = self._cost_rows[index]
        if row is None:
            types = self._sorted_pack_types[index]
            saving_of = self.cost.saving
            build_of = self.cost.build
            savings = [saving_of(data) for data in types]
            builds = [build_of(data) for data in types]
            target = self._target_slot[index]
            store = build_of(types[target], is_store=True)
            row = self._cost_rows[index] = (savings, builds, target, store)
        return row

    def _fcost_row(self, index: int) -> tuple:
        """Float mirror of :meth:`_cost_row` plus the static bonus, for
        the bound-score fast path."""
        row = self._fcost_rows[index]
        if row is None:
            savings, builds, target, store = self._cost_row(index)
            op_saving, ref_bonus = self._static_bonus(index)
            row = self._fcost_rows[index] = (
                [float(s) for s in savings],
                [float(b) for b in builds],
                target,
                float(store),
                float(op_saving + ref_bonus),
            )
        return row

    def _score_bound(self, index: int, counts: List[int]) -> float:
        """Float upper bound on what :meth:`_score_from_list` would
        return for *any* pointwise-smaller-or-equal counts: the score is
        monotone nondecreasing in every count, the arithmetic error of
        the float mirror is far below 1e-9, and the bound inflates by
        exactly that margin."""
        savings, builds, target, store, static = self._fcost_row(index)
        own_counts = self._own_list[index]
        score = static
        for slot, count_ in enumerate(counts):
            score += (count_ - 1) * savings[slot]
            external = count_ > own_counts[slot]
            if slot == target:
                score -= store
                if own_counts[slot] > 1 and not external:
                    score -= builds[slot]
            elif not external:
                score -= builds[slot]
        return score / len(counts) + 1e-9

    def _score_from_list(self, index: int, counts: List[int]) -> Fraction:
        savings, builds, target, store = self._cost_row(index)
        own_counts = self._own_list[index]
        score = Fraction(0)
        for slot, count_ in enumerate(counts):
            # Each extra occurrence saves one materialization of this
            # pack — valued at what that materialization would cost.
            score += (count_ - 1) * savings[slot]
            external = count_ > own_counts[slot]
            if slot == target:
                # The result superword is always written back; a
                # non-contiguous target means a scatter either way.
                score -= store
                # Read-modify-write: the same pack is also a source and
                # nobody else produces it — it must be gathered first.
                if own_counts[slot] > 1 and not external:
                    score -= builds[slot]
            elif not external:
                # A source pack no other (non-conflicting) group defines
                # or uses: it must be materialized from scratch.
                score -= builds[slot]
        # The merge's inherent benefits: one lane's worth of ALU work
        # disappears, and each all-memory position collapses per-lane
        # scalar accesses into one wide access (the gather/scatter
        # penalties above are charged relative to that baseline).
        op_saving, ref_bonus = self._static_bonus(index)
        score += op_saving + ref_bonus
        return score / len(counts)

    def score(self, index: int) -> Fraction:
        """The decision score: reuse weight minus expected packing cost.

        Documented deviation from the paper (see DESIGN.md): the paper
        ranks candidates by reuse weight alone, breaks ties randomly,
        and leaves packing cost entirely to the final go/no-go cost
        model. A deterministic reproduction that must match Figure 16's
        "Global never loses to SLP" needs the grouping itself to avoid
        reuse-free gather groups when a contiguous alternative exists,
        so each pack type nothing else produces is charged its expected
        materialization cost (strided gather ≈ two superword operations,
        scalar gather ≈ half; near-zero when the layout stage will run
        and can rewrite the pack — see :class:`PenaltyContext`).
        """
        return self._score_from_list(
            index, self._counts_list(index, self._decided_multiset())
        )

    # -- whole-selection objective (shared with repro.slp.optimal) --------------

    def selection_objective(self, indices) -> Fraction:
        """The packing value of a pairwise non-conflicting selection, in
        vector-op units: the additive analog of :meth:`score` (see
        ``repro.slp.optimal`` for the exact definition).  Evaluated in
        ascending index order; the per-candidate marginal procedure is
        order-independent, so this is a well-defined set function — the
        quantity the optimal engine maximizes and the optimality-gap
        benchmark reports for every engine."""
        seen: Dict[PackData, bool] = {}
        status: Dict[PackData, int] = {}
        total = Fraction(0)
        for index in sorted(indices):
            total += self._objective_gain(index, seen, status)
        return total

    def _objective_gain(self, index: int, seen, status) -> Fraction:
        """Marginal objective of adding ``index``; mutates the caller's
        per-pack-type ``seen`` map and build/produce ``status`` map
        (0 absent, 1 built as a source, 2 produced as a target)."""
        savings, builds, target, store = self._cost_row(index)
        types = self._sorted_pack_types[index]
        own = self._own_list[index]
        op_saving, ref_bonus = self._static_bonus(index)
        gain = op_saving + ref_bonus - store
        rmw = own[target] > 1
        for slot, data in enumerate(types):
            gain += own[slot] * savings[slot]
            if not seen.get(data):
                seen[data] = True
                gain -= savings[slot]
            state = status.get(data, 0)
            if slot == target:
                if state == 1:
                    gain += builds[slot]
                if rmw:
                    gain -= builds[slot]
                status[data] = 2
            elif state == 0:
                gain -= builds[slot]
                status[data] = 1
        return gain

    # -- decision loop (Figure 10 lines 20–43) ----------------------------------

    def run(self) -> Tuple[List[GroupNode], List[GroupNode], GroupingTrace]:
        """Returns (decided groups, leftover units, trace)."""
        with section("grouping.decide"):
            trace = self._engine_impl.factory(self)
            trace.engine = self.engine
            if trace.objective is None:
                trace.objective = self.selection_objective(self.decided)

        decided_groups = [self._merged[i] for i in self.decided]
        taken = set()
        for group in decided_groups:
            taken |= group.sid_set
        leftovers = [u for u in self.units if not (u.sid_set & taken)]
        return decided_groups, leftovers, trace

    def _commit(
        self,
        best: int,
        trace: GroupingTrace,
        weight: Fraction,
        score: Optional[Fraction] = None,
        picked_by: str = "score",
        runners: Sequence[dict] = (),
        proven_optimal: bool = False,
    ):
        """Record a decision and remove the chosen candidate plus
        everything conflicting with it from both graphs. Returns the
        touched pack-type set and the indices removed."""
        candidate = self.candidates[best]
        trace.decisions.append((candidate, weight))
        self.decided.append(best)
        self.decided_packs.extend(self._packs[best])
        decided_counts = self._decided_counts
        for data in self._packs[best]:
            decided_counts[data] = decided_counts.get(data, 0) + 1
        count("grouping.decisions")
        conflict_bits = self.vp.conflict_bits(best)
        touched_data = set(self._packs[best])
        removed = []
        for index in sorted(self.active):
            if index == best or (conflict_bits >> index) & 1:
                self.active.discard(index)
                touched_data.update(self._packs[index])
                self.vp.remove_candidate(index)
                removed.append(index)
        if TRACE.enabled:
            block = TRACE.current("block")
            TRACE.event(
                "grouping.commit",
                prov=provenance_id(candidate.sid_set, block),
                sids=sorted(candidate.sid_set),
                weight=weight,
                score=score,
                picked_by=picked_by,
                engine=self.engine,
                proven_optimal=proven_optimal,
                runners_up=runners,
                removed=[
                    provenance_id(self.candidates[r].sid_set, block)
                    for r in removed
                    if r != best
                ],
            )
        return touched_data, removed

    def _trace_runners(self, best: int, weight_of, score_of) -> List[dict]:
        """The top-2 losing SG edges at commit time, for the trace.

        Uses the same accessors the engines rank with, so for the
        incremental engine this only fills memo caches with values the
        reference loop would have computed anyway — decisions are
        unaffected by tracing.
        """
        block = TRACE.current("block")
        others = sorted(
            (i for i in self.active if i != best),
            key=lambda i: (
                score_of(i),
                self.adjacency[i],
                _neg_key(self.candidates[i]),
            ),
            reverse=True,
        )[:2]
        return [
            {
                "prov": provenance_id(self.candidates[i].sid_set, block),
                "weight": weight_of(i),
                "score": score_of(i),
            }
            for i in others
        ]

    def _run_incremental(self) -> GroupingTrace:
        """The memoizing decision loop (see module docstring)."""
        trace = GroupingTrace([])
        cost_aware = self.decision_mode == "cost-aware"

        # ``results`` holds the (weight, score) pair of clean candidates
        # and is dropped on invalidation; ``previous`` survives it, so a
        # dirty recomputation whose counts come out unchanged reuses the
        # old Fractions instead of redoing the arithmetic.
        results: Dict[int, Tuple[Fraction, Fraction]] = {}
        previous: Dict[int, Tuple[List[int], Fraction, Fraction]] = {}
        generation: Dict[int, int] = {}
        heap: List[tuple] = []
        decided_counts = self._decided_counts

        def evaluate(index: int) -> Tuple[Fraction, Fraction]:
            got = results.get(index)
            if got is None:
                count("grouping.scores_recomputed")
                with section("grouping.weights"):
                    counts = self._counts_list(index, decided_counts)
                    old = previous.get(index)
                    if old is not None and old[0] == counts:
                        got = (old[1], old[2])
                    else:
                        weight = self._weight_from_list(counts)
                        score = (
                            self._score_from_list(index, counts)
                            if cost_aware
                            else weight
                        )
                        got = (weight, score)
                        previous[index] = (counts, weight, score)
                results[index] = got
            else:
                count("grouping.score_cache_hits")
            return got

        def weight_of(index: int) -> Fraction:
            return evaluate(index)[0]

        def score_of(index: int) -> Fraction:
            return evaluate(index)[1]

        def push(index: int, force_exact: bool = False) -> None:
            # Lazy max-heap entry: Python's heapq is a min-heap, so the
            # ranking tuple is negated — ``max`` by (score, adjacency,
            # smallest candidate key) becomes ``min`` by (-score,
            # -adjacency, key). Stale entries are recognized by their
            # generation stamp and skipped at pop time.
            #
            # Entries come in two flavours. An *exact* entry carries the
            # true score. A *bound* entry carries the cheaper
            # pre-elimination score, which can only overestimate (score
            # and weight are monotone nondecreasing in the per-slot
            # counts, and elimination only lowers counts) — so a bound
            # entry sorts at or before the candidate's true position,
            # and is refined to an exact one if it ever reaches the top.
            # Elimination therefore runs only for candidates that
            # actually contend for selection.
            got = results.get(index)
            if got is None and force_exact:
                got = evaluate(index)
            if got is not None:
                entry_score = got[1]
                exact = True
            else:
                count("grouping.score_bounds")
                with section("grouping.weights"):
                    counts = self._counts_list(
                        index, decided_counts, eliminate=False
                    )
                    entry_score = (
                        self._score_bound(index, counts)
                        if cost_aware
                        else (sum(counts) - len(counts)) / len(counts)
                        + 1e-9
                    )
                exact = False
            heapq.heappush(
                heap,
                (
                    -entry_score,
                    -self.adjacency[index],
                    self.candidates[index].key(),
                    generation.get(index, 0),
                    index,
                    exact,
                ),
            )

        for index in sorted(self.active):
            push(index)

        while self.active:
            while heap:
                entry = heap[0]
                index = entry[4]
                if index not in self.active or entry[3] != generation.get(
                    index, 0
                ):
                    heapq.heappop(heap)
                    continue
                if not entry[5]:
                    # A bound entry on top: replace it with the exact
                    # one. Every other entry's true score lies at or
                    # below its heap position, so the first exact entry
                    # to surface is the true argmax (ties impossible
                    # across candidates — keys are unique).
                    heapq.heappop(heap)
                    push(index, force_exact=True)
                    continue
                break
            else:  # pragma: no cover - every active candidate has an entry
                break
            best = index
            picked_by = "score"
            if cost_aware and score_of(best) < 0:
                # Packing looks like a net loss everywhere. Candidates
                # with genuine superword reuse (the paper's criterion)
                # are still committed — the paper "exploits all the
                # opportunities" — but reuse-free, cost-negative ones
                # are left scalar rather than sinking the whole block at
                # the cost gate.
                with_reuse = [
                    i for i in self.active if weight_of(i) > 0
                ]
                if not with_reuse:
                    break
                best = max(
                    with_reuse,
                    key=lambda i: (
                        weight_of(i),
                        score_of(i),
                        self.adjacency[i],
                        _neg_key(self.candidates[i]),
                    ),
                )
                picked_by = "reuse"
            runners = (
                self._trace_runners(best, weight_of, score_of)
                if TRACE.enabled
                else []
            )
            _touched, removed = self._commit(
                best,
                trace,
                weight_of(best),
                score=score_of(best),
                picked_by=picked_by,
                runners=runners,
            )
            for index in removed:
                results.pop(index, None)
                previous.pop(index, None)
            # Dirty set: still-active candidates whose auxiliary graph
            # or decided-pack counts could have changed. The committed
            # group dirties every type-sharing candidate (its packs
            # joined ``decided_packs`` and its nodes left the VP graph);
            # a removed conflictor ``r`` dirties a type-sharing
            # candidate ``j`` only when r and j do NOT conflict — if
            # they conflict, r's nodes were never in j's auxiliary graph
            # to begin with, so their removal cannot change j's counts.
            # Dirty candidates lose their caches and get a fresh heap
            # entry; everything else keeps its cached score and live
            # heap entry.
            best_types = self._pack_sets[best]
            others = [
                (r, self._pack_sets[r], self.vp.conflict_bits(r))
                for r in removed
                if r != best
            ]
            for index in self.active:
                types = self._pack_sets[index]
                dirty = bool(best_types & types) or any(
                    not (r_conflicts >> index) & 1 and (r_types & types)
                    for _r, r_types, r_conflicts in others
                )
                if dirty:
                    results.pop(index, None)
                    generation[index] = generation.get(index, 0) + 1
                    push(index)
        return trace

    def _run_reference(self) -> GroupingTrace:
        """The from-scratch loop: every iteration recomputes every
        active candidate's score. Kept as the differential oracle."""
        trace = GroupingTrace([])
        cost_aware = self.decision_mode == "cost-aware"
        decided_counts = self._decided_counts
        while self.active:
            weights: Dict[int, Fraction] = {}
            scores: Dict[int, Fraction] = {}
            for i in self.active:
                counts = self._counts_list(i, decided_counts)
                weight = self._weight_from_list(counts)
                weights[i] = weight
                scores[i] = (
                    self._score_from_list(i, counts)
                    if cost_aware
                    else weight
                )
            count("grouping.scores_recomputed", len(scores))
            best = max(
                self.active,
                key=lambda i: (
                    scores[i],
                    self.adjacency[i],
                    _neg_key(self.candidates[i]),
                ),
            )
            picked_by = "score"
            if cost_aware and scores[best] < 0:
                with_reuse = [
                    i for i in self.active if weights[i] > 0
                ]
                if not with_reuse:
                    break
                best = max(
                    with_reuse,
                    key=lambda i: (
                        weights[i],
                        scores[i],
                        self.adjacency[i],
                        _neg_key(self.candidates[i]),
                    ),
                )
                picked_by = "reuse"
            runners = (
                self._trace_runners(
                    best, weights.__getitem__, scores.__getitem__
                )
                if TRACE.enabled
                else []
            )
            self._commit(
                best,
                trace,
                weights[best],
                score=scores[best],
                picked_by=picked_by,
                runners=runners,
            )
        return trace


class _NegatedKey:
    """Inverts comparison so ``max`` picks the *smallest* candidate key
    among equal weights — the deterministic stand-in for the paper's
    "randomly choose one" tie-break."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other: "_NegatedKey") -> bool:
        return self.key > other.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NegatedKey) and self.key == other.key


def _neg_key(candidate: CandidateGroup) -> _NegatedKey:
    return _NegatedKey(candidate.key())
