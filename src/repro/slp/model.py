"""Core model types for the SLP optimizer.

Terminology, following Sections 2 and 4 of the paper:

* A **variable pack** is the multiset of operands sitting at the same
  position of the statements of a (candidate) group — *unordered* during
  grouping (``PackData``), *ordered* once scheduling fixes lane order
  (``OrderedPack``).
* A **SIMD group** is an unordered set of isomorphic, mutually
  independent statements chosen to execute as one SIMD operation.
* A **superword statement** is a SIMD group whose internal statement
  order (lane assignment) has been fixed by the scheduling phase.
* A **schedule** is the final execution sequence of superword statements
  and leftover single statements for one basic block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..analysis import DependenceGraph, OperandKey, operand_key
from ..errors import ScheduleError
from ..ir import BasicBlock, Statement

#: Canonical unordered pack: the sorted multiset of operand keys.
PackData = Tuple[OperandKey, ...]

#: A pack with lane order fixed.
OrderedPack = Tuple[OperandKey, ...]


def pack_data(keys: Sequence[OperandKey]) -> PackData:
    """Canonicalize a multiset of operand keys (order-insensitive)."""
    return tuple(sorted(keys))


@dataclass(frozen=True, slots=True)
class GroupNode:
    """An atomic unit during (iterative) grouping.

    Round 0 nodes wrap a single statement; a round-``r`` group merges two
    round-``r-1`` nodes. ``positions`` holds, for each operand position
    of the (shared) statement shape, the unordered pack of all member
    operands at that position — position 0 is the target.
    """

    sids: Tuple[int, ...]               # canonical ascending order
    signature: Tuple                     # members' isomorphism signature
    positions: Tuple[PackData, ...]
    element_bits: int

    @property
    def size(self) -> int:
        return len(self.sids)

    @property
    def width_bits(self) -> int:
        return self.size * self.element_bits

    @property
    def sid_set(self) -> FrozenSet[int]:
        return frozenset(self.sids)

    @staticmethod
    def of_statement(stmt: Statement) -> "GroupNode":
        positions = tuple(
            (operand_key(leaf),) for leaf in stmt.operand_positions()
        )
        return GroupNode(
            (stmt.sid,),
            stmt.isomorphism_signature(),
            positions,
            stmt.target.type.bits,
        )

    @staticmethod
    def merge(a: "GroupNode", b: "GroupNode") -> "GroupNode":
        if a.signature != b.signature:
            raise ScheduleError("cannot merge non-isomorphic group nodes")
        positions = tuple(
            pack_data(pa + pb) for pa, pb in zip(a.positions, b.positions)
        )
        return GroupNode(
            tuple(sorted(a.sids + b.sids)),
            a.signature,
            positions,
            a.element_bits,
        )

    def can_merge_with(
        self,
        other: "GroupNode",
        deps: DependenceGraph,
        datapath_bits: int,
    ) -> bool:
        """Validity of the merged candidate: isomorphism, no dependence
        between any members, and datapath width (constraints 1, 3, 4).

        Units must be the same size: iterative grouping (Section 4.2.2)
        treats a round-``r`` group as *one* atomic statement whose
        operands are packs, so it is only isomorphic to other round-``r``
        units — group sizes grow 2, 4, 8, ...
        """
        if self.size != other.size:
            return False
        if self.signature != other.signature:
            return False
        if self.width_bits + other.width_bits > datapath_bits:
            return False
        return not any(
            deps.dependent(p, q) for p in self.sids for q in other.sids
        )


@dataclass(frozen=True, slots=True)
class CandidateGroup:
    """A potential SIMD group: an unordered pair of group nodes."""

    left: GroupNode
    right: GroupNode

    def merged(self) -> GroupNode:
        return GroupNode.merge(self.left, self.right)

    @property
    def sid_set(self) -> FrozenSet[int]:
        return self.left.sid_set | self.right.sid_set

    @property
    def packs(self) -> Tuple[PackData, ...]:
        return self.merged().positions

    def key(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Deterministic identity for tie-breaking and hashing."""
        return tuple(sorted((self.left.sids, self.right.sids)))

    def conflicts_with(
        self, other: "CandidateGroup", deps: DependenceGraph
    ) -> bool:
        """Section 4.2.1: conflicting candidates share a statement or
        form a group-level dependence cycle."""
        if self.sid_set & other.sid_set:
            return True
        return deps.group_depends(self.sid_set, other.sid_set) and \
            deps.group_depends(other.sid_set, self.sid_set)


@dataclass(frozen=True, slots=True)
class SuperwordStatement:
    """A SIMD group with fixed lane order — one lane per member."""

    members: Tuple[Statement, ...]

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ScheduleError("a superword statement needs >= 2 lanes")
        signature = self.members[0].isomorphism_signature()
        for member in self.members[1:]:
            if member.isomorphism_signature() != signature:
                raise ScheduleError("superword statement members not isomorphic")

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def sids(self) -> Tuple[int, ...]:
        return tuple(m.sid for m in self.members)

    @property
    def sid_set(self) -> FrozenSet[int]:
        return frozenset(self.sids)

    @property
    def element_bits(self) -> int:
        return self.members[0].target.type.bits

    @property
    def width_bits(self) -> int:
        return self.size * self.element_bits

    def position_count(self) -> int:
        return len(self.members[0].operand_positions())

    def ordered_pack(self, position: int) -> OrderedPack:
        """The lane-ordered pack at an operand position (0 = target)."""
        return tuple(
            operand_key(m.operand_positions()[position]) for m in self.members
        )

    def ordered_packs(self) -> Tuple[OrderedPack, ...]:
        return tuple(
            self.ordered_pack(p) for p in range(self.position_count())
        )

    def target_pack(self) -> OrderedPack:
        return self.ordered_pack(0)

    def source_packs(self) -> Tuple[OrderedPack, ...]:
        return self.ordered_packs()[1:]

    def lane_exprs(self, position: int):
        """The actual IR leaves at a position, in lane order."""
        return tuple(m.operand_positions()[position] for m in self.members)

    def reordered(self, order: Sequence[int]) -> "SuperwordStatement":
        return SuperwordStatement(tuple(self.members[i] for i in order))

    def __str__(self) -> str:
        inner = ", ".join(f"S{m.sid}" for m in self.members)
        return f"<{inner}>"


@dataclass(frozen=True, slots=True)
class ScheduledSingle:
    """A statement left scalar in the final schedule."""

    statement: Statement

    @property
    def sid_set(self) -> FrozenSet[int]:
        return frozenset((self.statement.sid,))

    def __str__(self) -> str:
        return f"S{self.statement.sid}"


ScheduleItem = object  # Union[SuperwordStatement, ScheduledSingle]


@dataclass
class Schedule:
    """The scheduling ``D = <D1, ..., Dm>`` for one basic block."""

    block: BasicBlock
    items: List[ScheduleItem] = field(default_factory=list)

    def superwords(self) -> Iterator[SuperwordStatement]:
        for item in self.items:
            if isinstance(item, SuperwordStatement):
                yield item

    def singles(self) -> Iterator[ScheduledSingle]:
        for item in self.items:
            if isinstance(item, ScheduledSingle):
                yield item

    def grouped_fraction(self) -> float:
        grouped = sum(sw.size for sw in self.superwords())
        total = len(self.block)
        return grouped / total if total else 0.0

    def validate(self, deps: Optional[DependenceGraph] = None,
                 datapath_bits: Optional[int] = None) -> None:
        """Check the four validity constraints of Section 4.1.

        Raises ``InvalidScheduleError`` on the first violation.
        """
        deps = deps or DependenceGraph(self.block)
        scheduled: List[FrozenSet[int]] = []
        seen: set = set()
        for item in self.items:
            if isinstance(item, SuperwordStatement):
                sids = item.sid_set
                # (1) members pairwise independent
                for p in item.sids:
                    for q in item.sids:
                        if p < q and deps.dependent(p, q):
                            raise InvalidScheduleError(
                                f"dependence inside superword {item}"
                            )
                # (3) isomorphism enforced by the constructor
                # (4) datapath width
                if datapath_bits is not None \
                        and item.width_bits > datapath_bits:
                    raise InvalidScheduleError(
                        f"{item} exceeds the {datapath_bits}-bit datapath"
                    )
            elif isinstance(item, ScheduledSingle):
                sids = item.sid_set
            else:  # pragma: no cover - defensive
                raise InvalidScheduleError(f"unknown schedule item {item!r}")
            # (2) dependences preserved: all predecessors scheduled before
            for sid in sids:
                for pred in deps.predecessors(sid):
                    if pred in sids:
                        continue  # would have failed constraint (1)
                    if pred not in seen:
                        raise InvalidScheduleError(
                            f"S{sid} scheduled before its dependence "
                            f"source S{pred}"
                        )
            overlap = sids & seen
            if overlap:
                raise InvalidScheduleError(
                    f"statements scheduled twice: {sorted(overlap)}"
                )
            seen |= sids
            scheduled.append(sids)
        missing = {s.sid for s in self.block} - seen
        if missing:
            raise InvalidScheduleError(
                f"statements missing from schedule: {sorted(missing)}"
            )

    def __str__(self) -> str:
        return "\n".join(str(item) for item in self.items)


class InvalidScheduleError(ScheduleError):
    """A schedule violating the validity constraints of Section 4.1."""
