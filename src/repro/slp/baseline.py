"""The original SLP algorithm of Larsen & Amarasinghe (PLDI 2000) — the
paper's main comparison point ("SLP") — plus the stricter "Native"
vectorizer model, implemented as one configurable greedy pass.

The greedy algorithm, at statement granularity (as in the paper's
re-implementation on SUIF):

1. **Seeds**: isomorphic, independent statement pairs with *adjacent
   memory accesses* become the initial packs. The "SLP" configuration
   needs one adjacent array-reference position; the "Native"
   configuration (modelling a conservative built-in vectorizer) requires
   every array-reference position to be contiguous in a consistent
   order and every scalar position to be uniform.
2. **Extension**: new packs are grown by following def-use and use-def
   chains from existing packs.
3. **Combination**: packs whose memory accesses line up back-to-back are
   fused into wider groups until the datapath is full.
4. Scheduling keeps program order (earliest-member-first among ready
   units); lane order is whatever the seed/chain dictated — precisely
   the "local heuristics" the paper's Global algorithm improves on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ScheduleCycleError
from ..analysis import (
    DefUseChains,
    DependenceGraph,
    operand_key,
)
from ..analysis.alignment import flat_affine
from ..ir import ArrayDecl, ArrayRef, BasicBlock, Const, Statement
from ..trace import TRACE, provenance_id
from .model import (
    Schedule,
    ScheduledSingle,
    SuperwordStatement,
)

DeclLookup = Callable[[str], ArrayDecl]


@dataclass
class GreedyConfig:
    """Knobs distinguishing "SLP" from "Native"."""

    datapath_bits: int = 128
    #: Every memory position must be contiguous (Native) vs. at least one
    #: adjacent memory position (original SLP seeds).
    require_full_contiguity: bool = False
    #: Whether packs grow along def-use/use-def chains.
    follow_chains: bool = True


class GreedySLP:
    """One basic block through the greedy packer + program-order scheduler."""

    def __init__(
        self,
        block: BasicBlock,
        deps: DependenceGraph,
        decl_of: DeclLookup,
        config: GreedyConfig,
    ):
        self.block = block
        self.deps = deps
        self.decl_of = decl_of
        self.config = config
        self.packs: List[Tuple[Statement, ...]] = []
        self.packed: Set[int] = set()

    # -- helpers ---------------------------------------------------------------

    def _lanes_fit(self, count: int, element_bits: int) -> bool:
        return count * element_bits <= self.config.datapath_bits

    def _flat_delta(self, a: ArrayRef, b: ArrayRef) -> Optional[int]:
        """Constant flat-address distance b - a, if provable."""
        if a.array != b.array:
            return None
        delta = flat_affine(b, self.decl_of(b.array)) - flat_affine(
            a, self.decl_of(a.array)
        )
        if delta.is_constant:
            return delta.const
        return None

    def _adjacency(self, a: Statement, b: Statement) -> Optional[Tuple[Statement, Statement]]:
        """Seed test. Returns the lane order (low address first) when the
        pair qualifies under the configured policy, else ``None``."""
        pos_a = a.operand_positions()
        pos_b = b.operand_positions()
        mem_positions = [
            (la, lb)
            for la, lb in zip(pos_a, pos_b)
            if isinstance(la, ArrayRef) and isinstance(lb, ArrayRef)
        ]
        if not mem_positions:
            return None

        forward = backward = False
        for la, lb in mem_positions:
            delta = self._flat_delta(la, lb)
            if delta == 1:
                forward = True
            elif delta == -1:
                backward = True

        if self.config.require_full_contiguity:
            # Native: every memory position contiguous the same way, and
            # every scalar position uniform (same variable or constants).
            return self._full_contiguity_order(a, b, pos_a, pos_b, mem_positions)

        if forward:
            return (a, b)
        if backward:
            return (b, a)
        return None

    def _full_contiguity_order(
        self, a: Statement, b: Statement, pos_a, pos_b, mem_positions
    ) -> Optional[Tuple[Statement, Statement]]:
        deltas = [self._flat_delta(la, lb) for la, lb in mem_positions]
        if all(d == 1 for d in deltas):
            direction = 1
        elif all(d == -1 for d in deltas):
            direction = -1
        else:
            return None
        for la, lb in zip(pos_a, pos_b):
            if isinstance(la, ArrayRef):
                continue
            if isinstance(la, Const) and isinstance(lb, Const):
                continue
            if operand_key(la) != operand_key(lb):
                return None
        return (a, b) if direction == 1 else (b, a)

    def _pair_ok(self, a: Statement, b: Statement) -> bool:
        return (
            a.sid != b.sid
            and a.sid not in self.packed
            and b.sid not in self.packed
            and a.is_isomorphic_to(b)
            and self.deps.independent(a.sid, b.sid)
            and self._lanes_fit(2, a.target.type.bits)
        )

    # -- phase 1: seeds -----------------------------------------------------------

    def _find_seeds(self) -> None:
        statements = list(self.block)
        for a, b in itertools.combinations(statements, 2):
            if not self._pair_ok(a, b):
                continue
            order = self._adjacency(a, b)
            if order is None:
                continue
            self._commit(order, "seed")

    def _commit(self, lanes: Tuple[Statement, ...], reason: str) -> None:
        self.packs.append(lanes)
        self.packed.update(s.sid for s in lanes)
        if TRACE.enabled:
            sids = sorted(s.sid for s in lanes)
            TRACE.event(
                "baseline.pack",
                prov=provenance_id(sids, TRACE.current("block")),
                sids=sids,
                reason=reason,
            )

    # -- phase 2: chain extension ---------------------------------------------------

    def _extend(self) -> None:
        if not self.config.follow_chains:
            return
        chains = DefUseChains(self.block)
        changed = True
        while changed:
            changed = False
            for pack in list(self.packs):
                if self._extend_def_use(pack, chains):
                    changed = True
                if self._extend_use_def(pack, chains):
                    changed = True

    def _extend_def_use(self, pack, chains: DefUseChains) -> bool:
        """Pack the statements consuming this pack's lane targets at the
        same operand position."""
        if len(pack) != 2:
            return False
        left, right = pack
        users_left = chains.users(left.sid)
        users_right = chains.users(right.sid)
        for ul in users_left:
            for ur in users_right:
                if ul.position != ur.position:
                    continue
                a, b = self.block[ul.sid], self.block[ur.sid]
                if not self._pair_ok(a, b):
                    continue
                if not self._chain_pair_allowed(a, b):
                    continue
                self._commit((a, b), "def-use")
                return True
        return False

    def _extend_use_def(self, pack, chains: DefUseChains) -> bool:
        """Pack the definitions feeding this pack's corresponding uses."""
        if len(pack) != 2:
            return False
        left, right = pack
        left_leaf_count = len(list(left.expr.leaves()))
        for position in range(left_leaf_count):
            def_left = chains.definition_feeding(left.sid, position)
            def_right = chains.definition_feeding(right.sid, position)
            if def_left is None or def_right is None:
                continue
            if not self._pair_ok(def_left, def_right):
                continue
            if not self._chain_pair_allowed(def_left, def_right):
                continue
            self._commit((def_left, def_right), "use-def")
            return True
        return False

    def _chain_pair_allowed(self, a: Statement, b: Statement) -> bool:
        """Native additionally demands contiguity of every memory
        position even for chain-grown packs."""
        if not self.config.require_full_contiguity:
            return True
        pos_a, pos_b = a.operand_positions(), b.operand_positions()
        for la, lb in zip(pos_a, pos_b):
            if isinstance(la, ArrayRef) and isinstance(lb, ArrayRef):
                if self._flat_delta(la, lb) != 1:
                    return False
        return True

    # -- phase 3: combination into wider groups -------------------------------------

    def _combine(self) -> None:
        changed = True
        while changed:
            changed = False
            for i, first in enumerate(self.packs):
                for j, second in enumerate(self.packs):
                    if i == j:
                        continue
                    if not self._combinable(first, second):
                        continue
                    self.packs[i] = first + second
                    del self.packs[j]
                    if TRACE.enabled:
                        sids = sorted(s.sid for s in self.packs[i])
                        TRACE.event(
                            "baseline.pack",
                            prov=provenance_id(
                                sids, TRACE.current("block")
                            ),
                            sids=sids,
                            reason="combine",
                        )
                    changed = True
                    break
                if changed:
                    break

    def _combinable(self, first, second) -> bool:
        element_bits = first[0].target.type.bits
        if not self._lanes_fit(len(first) + len(second), element_bits):
            return False
        if first[0].isomorphism_signature() != second[0].isomorphism_signature():
            return False
        for p in first:
            for q in second:
                if self.deps.dependent(p.sid, q.sid):
                    return False
        # Back-to-back memory accesses: some memory position where the
        # last lane of `first` sits immediately below the first lane of
        # `second`.
        last, head = first[-1], second[0]
        for la, lb in zip(last.operand_positions(), head.operand_positions()):
            if isinstance(la, ArrayRef) and isinstance(lb, ArrayRef):
                if self._flat_delta(la, lb) == 1:
                    return True
        return False

    # -- phase 4: program-order scheduling -------------------------------------------

    def schedule(self) -> Schedule:
        self._find_seeds()
        self._extend()
        self._combine()
        units: List[Tuple[Statement, ...]] = list(self.packs)
        for stmt in self.block:
            if stmt.sid not in self.packed:
                units.append((stmt,))
        units = _demote_cyclic_units(units, self.deps)
        return _program_order_schedule(self.block, self.deps, units)


def _demote_cyclic_units(
    units: List[Tuple[Statement, ...]], deps: DependenceGraph
) -> List[Tuple[Statement, ...]]:
    """Split grouped units until the unit-level dependence graph is a
    DAG (the greedy packer has no global cycle check)."""
    current = list(units)
    while True:
        cycle = _find_unit_cycle(current, deps)
        if cycle is None:
            return current
        grouped = [i for i in cycle if len(current[i]) > 1]
        if not grouped:  # pragma: no cover - singles cannot form cycles
            raise ScheduleCycleError("dependence cycle among single statements")
        victim = min(grouped, key=lambda i: (len(current[i]), i))
        singles = [(s,) for s in current[victim]]
        current = current[:victim] + current[victim + 1:] + singles


def _find_unit_cycle(
    units: Sequence[Tuple[Statement, ...]], deps: DependenceGraph
) -> Optional[List[int]]:
    sid_sets = [frozenset(s.sid for s in unit) for unit in units]
    succ: Dict[int, List[int]] = {i: [] for i in range(len(units))}
    for i, a in enumerate(sid_sets):
        for j, b in enumerate(sid_sets):
            if i != j and deps.group_depends(a, b):
                succ[i].append(j)
    color: Dict[int, int] = {}
    stack: List[int] = []

    def visit(node: int) -> Optional[List[int]]:
        color[node] = 1
        stack.append(node)
        for nxt in succ[node]:
            if color.get(nxt) == 1:
                return stack[stack.index(nxt):]
            if color.get(nxt, 0) == 0:
                found = visit(nxt)
                if found:
                    return found
        stack.pop()
        color[node] = 2
        return None

    for start in range(len(units)):
        if color.get(start, 0) == 0:
            found = visit(start)
            if found:
                return found
    return None


def _program_order_schedule(
    block: BasicBlock,
    deps: DependenceGraph,
    units: Sequence[Tuple[Statement, ...]],
) -> Schedule:
    sid_sets = [frozenset(s.sid for s in unit) for unit in units]
    preds: Dict[int, Set[int]] = {i: set() for i in range(len(units))}
    for i, a in enumerate(sid_sets):
        for j, b in enumerate(sid_sets):
            if i != j and deps.group_depends(a, b):
                preds[j].add(i)

    schedule = Schedule(block)
    remaining = set(range(len(units)))
    done: Set[int] = set()
    while remaining:
        ready = [i for i in remaining if preds[i] <= done]
        assert ready, "unit dependence graph must be acyclic"
        chosen = min(
            ready,
            key=lambda i: min(block.position(s.sid) for s in units[i]),
        )
        unit = units[chosen]
        if len(unit) > 1:
            schedule.items.append(SuperwordStatement(tuple(unit)))
        else:
            schedule.items.append(ScheduledSingle(unit[0]))
        remaining.discard(chosen)
        done.add(chosen)
    return schedule


def greedy_slp_schedule(
    block: BasicBlock,
    deps: DependenceGraph,
    decl_of: DeclLookup,
    datapath_bits: int = 128,
) -> Schedule:
    """The paper's "SLP" baseline configuration."""
    config = GreedyConfig(datapath_bits=datapath_bits)
    return GreedySLP(block, deps, decl_of, config).schedule()


def native_schedule(
    block: BasicBlock,
    deps: DependenceGraph,
    decl_of: DeclLookup,
    datapath_bits: int = 128,
) -> Schedule:
    """The paper's "Native" (conservative compiler vectorizer) model."""
    config = GreedyConfig(
        datapath_bits=datapath_bits, require_full_contiguity=True
    )
    return GreedySLP(block, deps, decl_of, config).schedule()
