"""Superword statement generation — the paper's main contribution
(Section 4): global grouping over the variable-pack conflicting and
statement grouping graphs, iterative widening, and reuse-driven
scheduling — plus the Larsen–Amarasinghe and Native baselines."""

from .baseline import (
    GreedyConfig,
    GreedySLP,
    greedy_slp_schedule,
    native_schedule,
)
from .candidates import find_candidates
from .conflict import PackNode, VariablePackGraph
from .grouping import (
    BasicGrouping,
    GroupingTrace,
    PenaltyContext,
    eliminate_conflicts,
)
from .iterative import iterative_grouping
from .model import (
    CandidateGroup,
    GroupNode,
    InvalidScheduleError,
    OrderedPack,
    PackData,
    Schedule,
    ScheduledSingle,
    SuperwordStatement,
    pack_data,
)
from .scheduling import (
    GroupDependenceGraph,
    LiveSuperwordSet,
    Scheduler,
    keys_may_alias,
)


def holistic_slp_schedule(
    block,
    deps,
    datapath_bits: int = 128,
    decl_of=None,
    penalty_context=None,
    decision_mode: str = "cost-aware",
    engine: str = "incremental",
    *,
    engine_options=None,
    on_diagnostic=None,
) -> Schedule:
    """The paper's "Global" algorithm for one basic block: iterative
    global grouping (Section 4.2) followed by reuse-driven scheduling
    (Section 4.3). ``penalty_context`` tells the grouping cost model
    whether the data layout stage will run afterwards; ``decision_mode``
    selects between the cost-aware decision score (default) and the
    paper-literal weight-only ranking (for ablations); ``engine``
    selects the grouping decision loop from the :mod:`repro.engines`
    registry (both greedy loops produce identical results; ``"optimal"``
    runs the exact search of :mod:`repro.slp.optimal`, honoring
    ``engine_options={"node_budget": ...}`` and reporting budget
    fallbacks through ``on_diagnostic``)."""
    units, _traces = iterative_grouping(
        block, deps, datapath_bits, decl_of, penalty_context,
        decision_mode, engine,
        engine_options=engine_options,
        on_diagnostic=on_diagnostic,
    )
    return Scheduler(block, deps, units).run()


__all__ = [
    "BasicGrouping",
    "CandidateGroup",
    "GreedyConfig",
    "GreedySLP",
    "GroupDependenceGraph",
    "GroupNode",
    "GroupingTrace",
    "InvalidScheduleError",
    "LiveSuperwordSet",
    "OrderedPack",
    "PackData",
    "PenaltyContext",
    "PackNode",
    "Schedule",
    "ScheduledSingle",
    "Scheduler",
    "SuperwordStatement",
    "VariablePackGraph",
    "eliminate_conflicts",
    "find_candidates",
    "greedy_slp_schedule",
    "holistic_slp_schedule",
    "iterative_grouping",
    "keys_may_alias",
    "native_schedule",
    "pack_data",
]
