"""Candidate group identification — step 1 of the basic grouping
algorithm (Section 4.2.1, Figure 10 line 1).

A candidate group is an unordered pair of units (statements, or groups
from an earlier iterative round) that are isomorphic, mutually
dependence free, and fit the SIMD datapath.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

from ..analysis import DependenceGraph
from ..perf import count, section
from ..trace import TRACE
from .model import CandidateGroup, GroupNode


def find_candidates(
    units: Sequence[GroupNode],
    deps: DependenceGraph,
    datapath_bits: int,
) -> List[CandidateGroup]:
    """All valid candidate pairs among ``units``, deterministically
    ordered by their canonical key.

    Units are bucketed by isomorphism signature first, so the pass is
    quadratic only within each isomorphism class. Degenerate single-unit
    buckets — the common case on blocks with little isomorphism — are
    skipped before any pairing work, and the final sort only runs when
    something was actually found.
    """
    with section("grouping.candidates"):
        by_signature: Dict[Tuple, List[GroupNode]] = {}
        for unit in units:
            by_signature.setdefault(unit.signature, []).append(unit)

        candidates: List[CandidateGroup] = []
        pairs_examined = 0
        for bucket in by_signature.values():
            if len(bucket) < 2:
                continue
            for a, b in itertools.combinations(bucket, 2):
                pairs_examined += 1
                if a.can_merge_with(b, deps, datapath_bits):
                    candidates.append(CandidateGroup(a, b))
        count("candidates.pairs_examined", pairs_examined)
        if candidates:
            candidates.sort(key=lambda c: c.key())
        if TRACE.enabled:
            TRACE.event(
                "candidates.search",
                units=len(units),
                pairs_examined=pairs_examined,
                found=len(candidates),
            )
        return candidates
