"""Statement scheduling — the second phase of superword statement
generation (Section 4.3, Figure 11).

Given the SIMD groups chosen by grouping, this phase (1) picks a valid
execution sequence that brings superword reuses close together, driven
by a *live superword set* of packs currently expected to sit in vector
registers, and (2) fixes the statement order inside each superword
statement so reuses need as few register permutations as possible —
testing only orderings that yield at least one *direct* reuse, exactly
as the paper prescribes, with memory-order and program-order fallbacks
when no direct reuse is achievable.

The live set is maintained soundly: packs containing an operand that a
scheduled statement (re)writes are invalidated, so a "reuse" here is
never a stale value. The code generator repeats the same bookkeeping at
emission time.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import ScheduleCycleError
from ..analysis import DependenceGraph, OperandKey
from ..analysis.operands import KIND_REF, KIND_VAR
from ..ir import BasicBlock, Statement
from ..trace import TRACE, provenance_id
from .model import (
    GroupNode,
    OrderedPack,
    PackData,
    Schedule,
    ScheduledSingle,
    SuperwordStatement,
    pack_data,
)

_MAX_TESTED_ORDERINGS = 24


def keys_may_alias(a: OperandKey, b: OperandKey) -> bool:
    """May-alias on operand keys (mirrors dependence.refs_may_alias)."""
    if a[0] == KIND_VAR and b[0] == KIND_VAR:
        return a[1] == b[1]
    if a[0] == KIND_REF and b[0] == KIND_REF:
        if a[1] != b[1]:
            return False
        subs_a, subs_b = a[2], b[2]
        if len(subs_a) != len(subs_b):
            return True
        for sa, sb in zip(subs_a, subs_b):
            delta = sa - sb
            if delta.is_constant and delta.const != 0:
                return False
        return True
    return False


class LiveSuperwordSet:
    """Packs "most likely in vector registers currently", one ordered
    pack per pack-data multiset (a newly ordered superword replaces any
    existing superword over the same data)."""

    def __init__(self) -> None:
        self._live: Dict[PackData, OrderedPack] = {}

    def lookup(self, data: PackData) -> Optional[OrderedPack]:
        return self._live.get(data)

    def contains_data(self, data: PackData) -> bool:
        return data in self._live

    def insert(self, ordered: OrderedPack) -> None:
        self._live[pack_data(ordered)] = ordered

    def invalidate_written(self, written: Sequence[OperandKey]) -> None:
        """Drop packs holding a value that aliases a just-written operand."""
        stale = [
            data
            for data, ordered in self._live.items()
            if any(
                keys_may_alias(lane, w) for lane in ordered for w in written
            )
        ]
        for data in stale:
            del self._live[data]

    def packs(self) -> Tuple[OrderedPack, ...]:
        return tuple(self._live.values())

    def __len__(self) -> int:
        return len(self._live)


# ---------------------------------------------------------------------------
# Group dependence graph
# ---------------------------------------------------------------------------


class GroupDependenceGraph:
    """Dependences lifted from statements to scheduling units."""

    def __init__(self, units: Sequence[GroupNode], deps: DependenceGraph):
        self.units = list(units)
        self.deps = deps
        self.succ: Dict[int, Set[int]] = {i: set() for i in range(len(units))}
        self.pred: Dict[int, Set[int]] = {i: set() for i in range(len(units))}
        for i, a in enumerate(self.units):
            for j, b in enumerate(self.units):
                if i == j:
                    continue
                if deps.group_depends(a.sid_set, b.sid_set):
                    self.succ[i].add(j)
                    self.pred[j].add(i)

    def find_cycle(self) -> Optional[List[int]]:
        """A unit cycle, if any (grouping usually prevents these but the
        pairwise conflict test cannot rule out 3-cycles)."""
        color: Dict[int, int] = {}
        stack: List[int] = []

        def visit(node: int) -> Optional[List[int]]:
            color[node] = 1
            stack.append(node)
            for nxt in sorted(self.succ[node]):
                if color.get(nxt) == 1:
                    return stack[stack.index(nxt):]
                if color.get(nxt, 0) == 0:
                    found = visit(nxt)
                    if found:
                        return found
            stack.pop()
            color[node] = 2
            return None

        for start in range(len(self.units)):
            if color.get(start, 0) == 0:
                found = visit(start)
                if found:
                    return found
        return None


# ---------------------------------------------------------------------------
# Scheduling proper
# ---------------------------------------------------------------------------


class Scheduler:
    """Figure 11, with sound live-set invalidation."""

    def __init__(
        self,
        block: BasicBlock,
        deps: DependenceGraph,
        units: Sequence[GroupNode],
    ):
        self.block = block
        self.deps = deps
        self.units = self._acyclic_units(list(units))
        self.graph = GroupDependenceGraph(self.units, deps)
        self.live = LiveSuperwordSet()

    def _acyclic_units(self, units: List[GroupNode]) -> List[GroupNode]:
        current = units
        while True:
            graph = GroupDependenceGraph(current, self.deps)
            cycle = graph.find_cycle()
            if cycle is None:
                return current
            grouped = [i for i in cycle if current[i].size > 1]
            if not grouped:  # pragma: no cover
                raise ScheduleCycleError("dependence cycle among single statements")
            victim_index = min(grouped, key=lambda i: (current[i].size, i))
            victim = current[victim_index]
            singles = [
                GroupNode.of_statement(self.block[sid])
                for sid in victim.sids
            ]
            current = (
                current[:victim_index]
                + current[victim_index + 1:]
                + singles
            )

    # -- public -------------------------------------------------------------------

    def run(self) -> Schedule:
        schedule = Schedule(self.block)
        remaining: Set[int] = set(range(len(self.units)))
        scheduled: Set[int] = set()

        while remaining:
            ready = sorted(
                i
                for i in remaining
                if self.graph.pred[i] <= scheduled
            )
            assert ready, "dependence graph must be acyclic here"
            group_ready = [i for i in ready if self.units[i].size > 1]
            if group_ready:
                index = self._best_group(group_ready)
                if TRACE.enabled:
                    unit = self.units[index]
                    hits = self._reuse_count(unit)
                    TRACE.event(
                        "schedule.pick",
                        prov=provenance_id(
                            unit.sids, TRACE.current("block")
                        ),
                        reuse_hits=hits,
                        reuse_misses=len(unit.positions) - hits,
                        ready_groups=len(group_ready),
                    )
                item = self._order_group(self.units[index])
                self._retire_superword(item)
                schedule.items.append(item)
            else:
                index = min(
                    (i for i in ready),
                    key=lambda i: self.block.position(self.units[i].sids[0]),
                )
                stmt = self.block[self.units[index].sids[0]]
                self._retire_single(stmt)
                schedule.items.append(ScheduledSingle(stmt))
            remaining.discard(index)
            scheduled.add(index)
        return schedule

    # -- group selection (Figure 11 lines 15-18) --------------------------------

    def _reuse_count(self, unit: GroupNode) -> int:
        return sum(
            1 for data in unit.positions if self.live.contains_data(data)
        )

    def _best_group(self, indices: Sequence[int]) -> int:
        return max(
            indices,
            key=lambda i: (
                self._reuse_count(self.units[i]),
                -min(self.block.position(s) for s in self.units[i].sids),
            ),
        )

    # -- intra-group ordering (Figure 11 lines 19-27) ---------------------------

    def _order_group(self, unit: GroupNode) -> SuperwordStatement:
        members = [self.block[sid] for sid in unit.sids]
        base = SuperwordStatement(tuple(members))
        orderings = self._candidate_orderings(base)
        # Tie-break on list position: direct-reuse orderings come first,
        # then memory order, then program order.
        best = min(
            range(len(orderings)),
            key=lambda i: (
                self._permutation_count(base, orderings[i]),
                i,
            ),
        )
        if TRACE.enabled:
            TRACE.event(
                "schedule.order",
                prov=provenance_id(base.sids, TRACE.current("block")),
                orderings_tried=len(orderings),
                permutations=self._permutation_count(base, orderings[best]),
                order=orderings[best],
            )
        return base.reordered(orderings[best])

    def _candidate_orderings(
        self, base: SuperwordStatement
    ) -> List[Tuple[int, ...]]:
        size = base.size
        found: List[Tuple[int, ...]] = []
        seen: Set[Tuple[int, ...]] = set()

        # Orderings achieving at least one direct reuse.
        for position in range(base.position_count()):
            keys = [
                _key_of(member, position) for member in base.members
            ]
            data = pack_data(keys)
            live = self.live.lookup(data)
            if live is None:
                continue
            for order in _match_orderings(keys, live, _MAX_TESTED_ORDERINGS):
                if order not in seen:
                    seen.add(order)
                    found.append(order)
                if len(found) >= _MAX_TESTED_ORDERINGS:
                    return found
        if found:
            return found

        # Fallback 1: memory order — sort lanes so array-reference
        # positions come out in ascending address order (cheap packing).
        for position in range(base.position_count()):
            keys = [_key_of(m, position) for m in base.members]
            if all(k[0] == KIND_REF for k in keys) and len(
                {k[1] for k in keys}
            ) == 1:
                order = tuple(
                    sorted(range(size), key=lambda lane: keys[lane][2])
                )
                if order not in seen:
                    seen.add(order)
                    found.append(order)
        # Fallback 2: program order.
        program = tuple(
            sorted(
                range(size),
                key=lambda lane: self.block.position(base.members[lane].sid),
            )
        )
        if program not in seen:
            found.append(program)
        return found

    def _permutation_count(
        self, base: SuperwordStatement, order: Tuple[int, ...]
    ) -> int:
        """Np: permutations needed for the reuses of this superword
        statement under a given lane order."""
        permutations = 0
        for position in range(base.position_count()):
            keys = tuple(
                _key_of(base.members[lane], position) for lane in order
            )
            live = self.live.lookup(pack_data(keys))
            if live is not None and live != keys:
                permutations += 1
        return permutations

    # -- live-set maintenance (Figure 11 lines 28-35) ----------------------------

    def _retire_superword(self, item: SuperwordStatement) -> None:
        for source in item.source_packs():
            self.live.insert(source)
        written = list(item.target_pack())
        self.live.invalidate_written(written)
        self.live.insert(item.target_pack())

    def _retire_single(self, stmt: Statement) -> None:
        from ..analysis import operand_key

        self.live.invalidate_written([operand_key(stmt.target)])


def _key_of(member: Statement, position: int):
    from ..analysis import operand_key

    return operand_key(member.operand_positions()[position])


def _match_orderings(
    keys: Sequence[OperandKey],
    live: OrderedPack,
    limit: int,
) -> Iterator[Tuple[int, ...]]:
    """Permutations ``order`` of lane indices with
    ``keys[order[l]] == live[l]`` for every lane — i.e. orderings under
    which this position directly reuses the live pack."""
    size = len(keys)
    lanes_for: List[List[int]] = [
        [i for i in range(size) if keys[i] == live[lane]]
        for lane in range(size)
    ]
    used: Set[int] = set()
    order: List[int] = []
    produced = 0

    def backtrack(lane: int) -> Iterator[Tuple[int, ...]]:
        nonlocal produced
        if produced >= limit:
            return
        if lane == size:
            produced += 1
            yield tuple(order)
            return
        for member in lanes_for[lane]:
            if member in used:
                continue
            used.add(member)
            order.append(member)
            yield from backtrack(lane + 1)
            order.pop()
            used.discard(member)

    yield from backtrack(0)
