"""The variable pack conflicting graph (VP) — step 2 of the basic
grouping algorithm (Section 4.2.1, Figure 10 lines 2–11).

Each node is one variable pack *tagged with the candidate group it comes
from* ("{Vi,Vj}_{Sp,Sq}"); an edge joins packs of conflicting candidate
groups. Multiple nodes may carry the same pack data — when such nodes
are *not* connected, the corresponding superwords can coexist in the
transformed code, and their count is exactly the reuse opportunity of
that superword.

Because every edge is induced by a *candidate-level* conflict, the graph
never materializes per-node adjacency sets: it stores one conflict
bitset per candidate (bit ``j`` of ``conflict_bits(i)`` says candidates
``i`` and ``j`` conflict) and derives node neighborhoods on demand. On
unrolled blocks at wide datapaths the old explicit edge lists held
hundreds of thousands of entries and dominated graph construction time.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set

from ..analysis import DependenceGraph
from ..perf import count, section
from ..trace import TRACE
from .model import CandidateGroup, PackData


class PackNode:
    """One VP node: a pack datum tagged with its originating candidate.

    Nodes compare and hash by *identity*: each (candidate, position)
    slot is one node, and the graph can hold many distinct nodes with
    equal pack data — that multiplicity IS the reuse information.
    Identity semantics also keep the (large) adjacency sets cheap: pack
    data tuples contain Affine objects and deep-hashing them per edge
    dominated compile time on wide-datapath blocks.
    """

    __slots__ = ("data", "candidate_index", "position")

    def __init__(self, data: PackData, candidate_index: int, position: int):
        self.data = data
        self.candidate_index = candidate_index
        self.position = position

    def sort_key(self):
        return (self.data, self.candidate_index, self.position)

    def __repr__(self) -> str:
        return f"pack{self.data}@cand{self.candidate_index}/{self.position}"

    __str__ = __repr__


def _iter_bits(mask: int):
    """Yield the set bit positions of a non-negative int, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class VariablePackGraph:
    """VP = (V, T): pack nodes with conflict edges.

    Edges are represented implicitly by per-candidate conflict bitsets;
    ``edge_count`` tracks what the explicit edge set's size would be
    (each conflicting candidate pair contributes |packs_i| x |packs_j|
    node edges), so the public accounting is unchanged.
    """

    def __init__(
        self,
        candidates: Sequence[CandidateGroup],
        deps: DependenceGraph,
    ):
        self.candidates = list(candidates)
        self.deps = deps
        self.nodes: Set[PackNode] = set()
        self.edge_count = 0
        self._nodes_of_candidate: Dict[int, List[PackNode]] = {}
        self._nodes_by_data: Dict[PackData, List[PackNode]] = {}
        self._conflict_bits: List[int] = []
        with section("grouping.vp_build"):
            self._build()

    def _build(self) -> None:
        # Conflict relation between candidates, computed once as
        # bitsets. Two candidates conflict when they share a statement
        # or form a group-level dependence cycle. Instead of testing all
        # O(n^2) pairs with set intersections, index candidates by the
        # statements they contain (`member_of`) and the statements their
        # members reach (`succ_of`); a candidate's conflict partners are
        # then unions of those buckets:
        #
        # * shared statement: any candidate indexed under one of my sids;
        # * dependence cycle: (succ_i & mem_j) and (succ_j & mem_i),
        #   i.e. the intersection of "candidates whose members I reach"
        #   with "candidates whose successors reach my members".
        n = len(self.candidates)
        members = [c.sid_set for c in self.candidates]
        successors = [
            frozenset().union(
                *(self.deps.successors(sid) for sid in sids)
            )
            if sids
            else frozenset()
            for sids in members
        ]
        member_of: Dict[int, int] = {}   # sid -> bitmask of candidates
        succ_of: Dict[int, int] = {}     # sid -> bitmask of candidates
        for index in range(n):
            bit = 1 << index
            for sid in members[index]:
                member_of[sid] = member_of.get(sid, 0) | bit
            for sid in successors[index]:
                succ_of[sid] = succ_of.get(sid, 0) | bit

        bits = [0] * n
        for i in range(n):
            self_bit = 1 << i
            shared = 0
            for sid in members[i]:
                shared |= member_of[sid]
            # succ_i & mem_j != 0  for candidates j in `forward`;
            # succ_j & mem_i != 0  for candidates j in `backward`.
            forward = 0
            for sid in successors[i]:
                forward |= member_of.get(sid, 0)
            backward = 0
            for sid in members[i]:
                backward |= succ_of.get(sid, 0)
            # Both the shared-statement relation and forward&backward
            # are symmetric by construction, so no symmetrize pass is
            # needed.
            bits[i] |= (shared | (forward & backward)) & ~self_bit
        self._conflict_bits = bits

        for index, candidate in enumerate(self.candidates):
            new_nodes = [
                PackNode(data, index, position)
                for position, data in enumerate(candidate.packs)
            ]
            self._nodes_of_candidate[index] = new_nodes
            for node in new_nodes:
                self.nodes.add(node)
                self._nodes_by_data.setdefault(node.data, []).append(node)
        # Canonical integer rank of every node, consistent with
        # ``PackNode.sort_key`` ordering. One sort here lets every
        # downstream tie-break compare small ints instead of whole pack
        # tuples (which hold Affine subscripts and compare slowly).
        self.node_rank: Dict[PackNode, int] = {
            node: position
            for position, node in enumerate(
                sorted(self.nodes, key=PackNode.sort_key)
            )
        }
        for i in range(n):
            size_i = len(self._nodes_of_candidate[i])
            for j in _iter_bits(bits[i] >> (i + 1)):
                self.edge_count += size_i * len(
                    self._nodes_of_candidate[i + 1 + j]
                )
        count("grouping.vp_nodes", len(self.nodes))
        count("grouping.vp_edges", self.edge_count)
        if TRACE.enabled:
            TRACE.event(
                "vp.build",
                candidates=len(self.candidates),
                nodes=len(self.nodes),
                edges=self.edge_count,
            )

    # -- queries -----------------------------------------------------------------

    def candidates_conflict(self, i: int, j: int) -> bool:
        return bool((self._conflict_bits[i] >> j) & 1)

    def conflict_bits(self, index: int) -> int:
        """Bitmask of candidates conflicting with ``index`` (including
        candidates already removed from the graph — callers intersect
        with whatever universe they care about)."""
        return self._conflict_bits[index]

    def nodes_of_candidate(self, index: int) -> List[PackNode]:
        return list(self._nodes_of_candidate.get(index, ()))

    def neighbors(self, node: PackNode) -> Set[PackNode]:
        """All live nodes of candidates conflicting with the node's
        candidate — exactly the explicit edge set of the old
        representation, derived on demand."""
        out: Set[PackNode] = set()
        for j in _iter_bits(self._conflict_bits[node.candidate_index]):
            out.update(self._nodes_of_candidate.get(j, ()))
        return out

    def nodes_with_data(self, data: PackData) -> List[PackNode]:
        return list(self._nodes_by_data.get(data, ()))

    def iter_nodes_with_data(self, data: PackData) -> Sequence[PackNode]:
        """Like :meth:`nodes_with_data` but without the defensive copy —
        for hot read-only loops. Callers must not mutate the graph while
        iterating."""
        return self._nodes_by_data.get(data, ())

    def remove_candidate(self, index: int) -> None:
        """Drop all pack nodes of one candidate (Figure 10 line 41)."""
        removed = self._nodes_of_candidate.pop(index, None)
        if removed is None:
            return
        for j in _iter_bits(self._conflict_bits[index]):
            other = self._nodes_of_candidate.get(j)
            if other is not None:
                self.edge_count -= len(removed) * len(other)
        for node in removed:
            self.nodes.discard(node)
            bucket = self._nodes_by_data.get(node.data)
            if bucket and node in bucket:
                bucket.remove(node)

    def coexistence_count(self, data: PackData) -> int:
        """How many mutually-nonconflicting occurrences of a pack exist —
        an upper bound on its reuse (informational; the weight machinery
        uses the auxiliary graph instead)."""
        matching = self.nodes_with_data(data)
        count_ = 0
        kept: List[PackNode] = []
        for node in matching:
            if all(
                not self.candidates_conflict(
                    node.candidate_index, k.candidate_index
                )
                for k in kept
            ):
                kept.append(node)
                count_ += 1
        return count_
