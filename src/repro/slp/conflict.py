"""The variable pack conflicting graph (VP) — step 2 of the basic
grouping algorithm (Section 4.2.1, Figure 10 lines 2–11).

Each node is one variable pack *tagged with the candidate group it comes
from* ("{Vi,Vj}_{Sp,Sq}"); an edge joins packs of conflicting candidate
groups. Multiple nodes may carry the same pack data — when such nodes
are *not* connected, the corresponding superwords can coexist in the
transformed code, and their count is exactly the reuse opportunity of
that superword.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set

from ..analysis import DependenceGraph
from .model import CandidateGroup, PackData


class PackNode:
    """One VP node: a pack datum tagged with its originating candidate.

    Nodes compare and hash by *identity*: each (candidate, position)
    slot is one node, and the graph can hold many distinct nodes with
    equal pack data — that multiplicity IS the reuse information.
    Identity semantics also keep the (large) adjacency sets cheap: pack
    data tuples contain Affine objects and deep-hashing them per edge
    dominated compile time on wide-datapath blocks.
    """

    __slots__ = ("data", "candidate_index", "position")

    def __init__(self, data: PackData, candidate_index: int, position: int):
        self.data = data
        self.candidate_index = candidate_index
        self.position = position

    def sort_key(self):
        return (self.data, self.candidate_index, self.position)

    def __repr__(self) -> str:
        return f"pack{self.data}@cand{self.candidate_index}/{self.position}"

    __str__ = __repr__


class VariablePackGraph:
    """VP = (V, T): pack nodes with conflict edges."""

    def __init__(
        self,
        candidates: Sequence[CandidateGroup],
        deps: DependenceGraph,
    ):
        self.candidates = list(candidates)
        self.deps = deps
        self.nodes: Set[PackNode] = set()
        self.edge_count = 0
        self._adjacency: Dict[PackNode, Set[PackNode]] = {}
        self._nodes_of_candidate: Dict[int, List[PackNode]] = {}
        self._nodes_by_data: Dict[PackData, List[PackNode]] = {}
        self.conflict_pairs: Set[FrozenSet[int]] = set()
        self._build()

    def _build(self) -> None:
        # Conflict relation between candidates, computed once. Two
        # candidates conflict when they share a statement or form a
        # group-level dependence cycle; both tests reduce to set
        # intersections over precomputed member/successor sets.
        members = [c.sid_set for c in self.candidates]
        successors = [
            frozenset().union(
                *(self.deps.successors(sid) for sid in sids)
            )
            if sids
            else frozenset()
            for sids in members
        ]
        for i in range(len(self.candidates)):
            for j in range(i + 1, len(self.candidates)):
                if members[i] & members[j]:
                    self.conflict_pairs.add(frozenset((i, j)))
                elif (successors[i] & members[j]) and (
                    successors[j] & members[i]
                ):
                    self.conflict_pairs.add(frozenset((i, j)))

        for index, candidate in enumerate(self.candidates):
            new_nodes = [
                PackNode(data, index, position)
                for position, data in enumerate(candidate.packs)
            ]
            self._nodes_of_candidate[index] = new_nodes
            for node in new_nodes:
                self.nodes.add(node)
                self._adjacency[node] = set()
                self._nodes_by_data.setdefault(node.data, []).append(node)
            # Edges to packs of already-inserted conflicting candidates.
            for earlier in range(index):
                if frozenset((earlier, index)) not in self.conflict_pairs:
                    continue
                for mine in new_nodes:
                    for theirs in self._nodes_of_candidate[earlier]:
                        self._connect(mine, theirs)

    def _connect(self, a: PackNode, b: PackNode) -> None:
        self.edge_count += 1
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)

    # -- queries -----------------------------------------------------------------

    def candidates_conflict(self, i: int, j: int) -> bool:
        return frozenset((i, j)) in self.conflict_pairs

    def nodes_of_candidate(self, index: int) -> List[PackNode]:
        return list(self._nodes_of_candidate.get(index, ()))

    def neighbors(self, node: PackNode) -> Set[PackNode]:
        return set(self._adjacency.get(node, ()))

    def nodes_with_data(self, data: PackData) -> List[PackNode]:
        return list(self._nodes_by_data.get(data, ()))

    def remove_candidate(self, index: int) -> None:
        """Drop all pack nodes of one candidate (Figure 10 line 41)."""
        for node in self._nodes_of_candidate.pop(index, ()):  # type: ignore[arg-type]
            for neighbor in self._adjacency.pop(node, set()):
                self._adjacency[neighbor].discard(node)
                self.edge_count -= 1
            self.nodes.discard(node)
            bucket = self._nodes_by_data.get(node.data)
            if bucket and node in bucket:
                bucket.remove(node)

    def coexistence_count(self, data: PackData) -> int:
        """How many mutually-nonconflicting occurrences of a pack exist —
        an upper bound on its reuse (informational; the weight machinery
        uses the auxiliary graph instead)."""
        matching = self.nodes_with_data(data)
        count = 0
        kept: List[PackNode] = []
        for node in matching:
            if all(node not in self._adjacency.get(k, set()) for k in kept):
                kept.append(node)
                count += 1
        return count
