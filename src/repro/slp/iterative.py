"""Iterative grouping — Section 4.2.2.

The basic grouping algorithm produces SIMD groups of size two. To fill
wider datapaths, each decided group is treated as a new atomic statement
(its variable packs become its "variables") and the basic algorithm runs
again over the updated unit set, until no further merge happens or every
group fills the datapath. Group sizes therefore grow 2, 4, 8, ... up to
``datapath_bits / element_bits`` lanes.
"""

from __future__ import annotations

from typing import List, Tuple

from ..analysis import DependenceGraph
from ..ir import BasicBlock
from ..perf import count, section
from ..trace import TRACE
from .grouping import BasicGrouping, GroupingTrace, PackCostModel
from .model import GroupNode


def iterative_grouping(
    block: BasicBlock,
    deps: DependenceGraph,
    datapath_bits: int,
    decl_of=None,
    penalty_context=None,
    decision_mode: str = "cost-aware",
    engine: str = "incremental",
    *,
    engine_options=None,
    on_diagnostic=None,
) -> Tuple[List[GroupNode], List[GroupingTrace]]:
    """Run grouping rounds to fixpoint.

    Returns the final unit list (groups of size >= 2 become superword
    statements; size-1 units stay scalar) and the per-round traces.
    ``decl_of`` (array name -> declaration) enables exact memory
    adjacency tie-breaking for multi-dimensional arrays. ``engine``
    selects the decision-loop implementation (see
    :mod:`repro.slp.grouping`); both produce identical results.
    """
    units: List[GroupNode] = [GroupNode.of_statement(s) for s in block]
    traces: List[GroupingTrace] = []
    # One pack-cost cache serves every round: later rounds re-derive
    # wider packs, but everything they share with earlier rounds (and
    # every repeated query within a round) is a hit.
    cost_model = PackCostModel(decl_of, penalty_context)
    with section("grouping"):
        round_index = 0
        while True:
            count("grouping.rounds")
            with TRACE.span("round", round=round_index):
                round_pass = BasicGrouping(
                    units, deps, datapath_bits, decl_of, penalty_context,
                    decision_mode, engine, cost_model,
                    engine_options=engine_options,
                    on_diagnostic=on_diagnostic,
                )
                decided, leftovers, trace = round_pass.run()
            traces.append(trace)
            if TRACE.enabled:
                TRACE.event(
                    "grouping.round",
                    round=round_index,
                    units=len(units),
                    decided=len(decided),
                    leftovers=len(leftovers),
                )
            round_index += 1
            if not decided:
                return units, traces
            units = decided + leftovers
            # Every unit is as wide as the datapath allows: nothing more to do.
            if all(u.width_bits * 2 > datapath_bits for u in units):
                return units, traces
