"""Differential fuzzing for the whole compiler pipeline.

Three pieces:

* :func:`generate_case` — a seeded random program generator over the
  DSL subset the pipeline supports: affine loop nests, straight-line
  blocks, mixed-arity expressions, comments, and alignment-hostile
  strides. The same seed always produces the same program.
* :func:`differential_check` — the oracle. Every generated program is
  compiled under every vector variant × both grouping engines and run
  on both simulation engines; the resulting memory image must equal
  the scalar baseline *bit for bit* (SLP packs isomorphic statements
  without re-associating, so even float results must match exactly).
  The two grouping engines must additionally produce identical plans.
* :func:`reduce_program` — a greedy delta-debugging reducer that
  shrinks a failing program (drop items, drop statements, shrink trip
  counts, un-loop, prune expressions) while the divergence reproduces.

Grammar restrictions, and why:

* No ``/`` or ``sqrt``: division by tiny values and square roots are
  where the reference interpreter (``math``) and the batched engine
  (``numpy``) can disagree about ``inf``/``nan`` propagation; every
  remaining operator is bit-identical between the two.
* Cases whose *scalar* result contains a non-finite value are skipped
  (reported as such) rather than compared: ``nan != nan`` would turn
  legitimate overflow into a false divergence.
* Inner loops of a nest always have a trip count that is a multiple of
  16, so unrolling never needs the (unsupported) remainder loop for a
  nested inner loop.
* Loop statement *targets* always involve the innermost index —
  accumulating into one cell across a whole loop overflows to ``inf``
  almost surely, which would just inflate the skip count.
* Constants are non-negative, keeping the printer → parser round trip
  (used by the reducer) exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from .compiler import CompilerOptions, Variant, compile_program
from .engines import engine_names, resolve
from .errors import format_failure
from .ir import (
    Affine,
    ArrayRef,
    BasicBlock,
    BinOp,
    IfRegion,
    Loop,
    Program,
    Select,
    Statement,
    UnOp,
    Var,
    parse_program,
)
from .transform import has_regions
from .ir.printer import format_program
from .slp.model import Schedule
from .vm import MachineModel, Simulator, intel_dunnington
from .vm.pretty import disassemble_plan

VECTOR_VARIANTS = (
    Variant.NATIVE,
    Variant.SLP,
    Variant.GLOBAL,
    Variant.GLOBAL_LAYOUT,
)
#: The grouping/sim engine axes come from the :mod:`repro.engines`
#: registry at check time, so a newly registered engine is fuzzed
#: automatically — no frozen module-scope lists.

# ---------------------------------------------------------------------------
# Program generator
# ---------------------------------------------------------------------------

_TYPE_NAMES = ("float", "double", "int", "int64")
_ARRAY_SIZES = (512, 1024, 2048)
_FLOAT_CONSTS = ("0.25", "0.5", "1.5", "2.0", "3.0")
_INT_CONSTS = ("1", "2", "3", "5")
_COMMENTS = (
    "// fuzz",
    "/* alignment-hostile on purpose */",
    "// generated, do not hand-tune",
)
_BINOPS = ("+", "-", "*", "min", "max")
_RELOPS = ("<", "<=", ">", ">=", "==", "!=")
# Nested inner loops must unroll without a remainder (multiple of 16
# covers every lane count the datapaths produce).
_INNER_TRIPS = (16, 32, 48, 64)
_OUTER_TRIPS = (2, 3, 4, 8)


@dataclass
class FuzzCase:
    """One generated program: the seed, the DSL text, the parsed IR."""

    seed: int
    source: str
    program: Program


def generate_case(seed: int, conditional: bool = False) -> FuzzCase:
    """Deterministically generate one random program from ``seed``.

    With ``conditional`` the grammar also produces single-level
    ``if``/``else`` regions and ``select()`` expressions (the
    if-conversion surface); the flag gates every extra RNG draw, so
    pinned seeds stay byte-identical when it is off.
    """
    # A string seed hashes deterministically across processes (tuple
    # seeds would go through randomized `hash()`).
    rng = random.Random(f"repro-fuzz-{seed}")
    source = _generate_source(rng, conditional)
    return FuzzCase(seed, source, parse_program(source))


def _generate_source(rng: random.Random, conditional: bool = False) -> str:
    type_name = rng.choice(_TYPE_NAMES)
    is_float = type_name in ("float", "double")
    consts = _FLOAT_CONSTS if is_float else _INT_CONSTS
    arrays = {
        f"A{k}": rng.choice(_ARRAY_SIZES) for k in range(rng.randint(2, 4))
    }
    scalars = [f"s{k}" for k in range(rng.randint(1, 3))]

    lines: List[str] = []
    for name, size in arrays.items():
        lines.append(f"{type_name} {name}[{size}];")
    lines.append(f"{type_name} {', '.join(scalars)};")
    if rng.random() < 0.5:
        lines.append(rng.choice(_COMMENTS))

    state = _GenState(rng, list(arrays), scalars, consts, conditional)
    for _ in range(rng.randint(1, 3)):
        if rng.random() < 0.4:
            lines.extend(state.straight_block())
        else:
            lines.extend(state.loop_nest())
    return "\n".join(lines) + "\n"


class _GenState:
    def __init__(self, rng, arrays, scalars, consts, conditional=False):
        self.rng = rng
        self.arrays = arrays
        self.scalars = scalars
        self.consts = consts
        self.conditional = conditional

    # -- expressions ---------------------------------------------------------

    def expr(self, depth: int, indices: List[str]) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.35:
            return self.leaf(indices)
        if self.conditional and rng.random() < 0.15:
            cond = self.condition(indices)
            on_true = self.expr(depth - 1, indices)
            on_false = self.expr(depth - 1, indices)
            return f"select({cond}, {on_true}, {on_false})"
        roll = rng.random()
        if roll < 0.10:
            # abs() of a bare literal is rejected by the parser.
            return f"abs({self.nonconst_leaf(indices)})"
        if roll < 0.16:
            return f"-{self.nonconst_leaf(indices)}"
        op = rng.choice(_BINOPS)
        left = self.expr(depth - 1, indices)
        right = self.expr(depth - 1, indices)
        if op in ("min", "max"):
            return f"{op}({left}, {right})"
        return f"({left} {op} {right})"

    def leaf(self, indices: List[str]) -> str:
        if self.rng.random() < 0.75:
            return self.nonconst_leaf(indices)
        return self.rng.choice(self.consts)

    def nonconst_leaf(self, indices: List[str]) -> str:
        if self.rng.random() < 0.67:
            return self.array_ref(indices)
        return self.rng.choice(self.scalars)

    def condition(self, indices: List[str]) -> str:
        """A parenthesized comparison whose left side is typed (the
        parser rejects all-literal conditions)."""
        op = self.rng.choice(_RELOPS)
        return f"({self.nonconst_leaf(indices)} {op} {self.leaf(indices)})"

    def guarded_condition(
        self, indices: List[str]
    ) -> Tuple[str, frozenset]:
        """A region condition plus the base names it reads. Branch
        targets must avoid those bases (the parser rejects regions
        whose non-final statements write condition operands), so the
        leaves are drawn to leave at least one array free."""
        rng = self.rng
        op = rng.choice(_RELOPS)
        array = rng.choice(self.arrays)
        left = f"{array}[{self.subscript(indices, force_innermost=True)}]"
        forbid = {array}
        roll = rng.random()
        if roll < 0.4:
            right = str(rng.choice(self.consts))
        elif roll < 0.7 and len(self.scalars) > 1:
            scalar = rng.choice(self.scalars)
            forbid.add(scalar)
            right = scalar
        else:
            right = f"{array}[{self.subscript(indices, force_innermost=True)}]"
        return f"({left} {op} {right})", frozenset(forbid)

    # -- array references ----------------------------------------------------

    def array_ref(self, indices: List[str], force_innermost=False) -> str:
        name = self.rng.choice(self.arrays)
        return f"{name}[{self.subscript(indices, force_innermost)}]"

    def subscript(self, indices: List[str], force_innermost=False) -> str:
        rng = self.rng
        if not indices:
            return str(rng.randrange(0, 64))
        terms: List[str] = []
        # Innermost index, with alignment-hostile strides and offsets.
        if force_innermost or rng.random() < 0.9:
            coeff = rng.choice((1, 1, 1, 2, 2, 3, 4))
            inner = indices[-1]
            terms.append(inner if coeff == 1 else f"{coeff}*{inner}")
        # Occasionally mix in an outer index.
        if len(indices) > 1 and rng.random() < 0.5:
            coeff = rng.choice((1, 2, 4))
            outer = indices[0]
            terms.append(outer if coeff == 1 else f"{coeff}*{outer}")
        if rng.random() < 0.6 or not terms:
            terms.append(str(rng.randrange(0, 9)))
        return " + ".join(terms)

    # -- statements and items ------------------------------------------------

    def straight_block(self) -> List[str]:
        rng = self.rng
        lines: List[str] = []
        remaining = rng.randint(4, 10)
        while remaining > 0:
            if rng.random() < 0.08:
                lines.append(rng.choice(_COMMENTS))
            if (
                self.conditional
                and remaining >= 2
                and rng.random() < 0.35
            ):
                region, used = self.if_region([], remaining)
                lines.extend(region)
                remaining -= used
            elif rng.random() < 0.6 and remaining >= 2:
                lines.extend(self.packable_family(min(remaining, 4)))
                remaining -= min(remaining, 4)
            else:
                lines.append(self.statement([]))
                remaining -= 1
        return lines

    def if_region(
        self, indices: List[str], budget: int
    ) -> Tuple[List[str], int]:
        """One single-level ``if``/``else`` region: half the time both
        branches assign the same targets (the select-merge shape),
        otherwise arbitrary branch statements (the masked-update
        shape). Returns the lines and the statement count consumed."""
        rng = self.rng
        cond, forbid = self.guarded_condition(indices)
        free_scalars = [s for s in self.scalars if s not in forbid]
        free_arrays = [a for a in self.arrays if a not in forbid]
        lines = [f"if {cond} {{"]
        width = rng.randint(1, max(1, min(budget, 3)))
        if rng.random() < 0.5:
            # Select-merge shape: identical targets, pairwise.
            targets = []
            for _ in range(width):
                if not indices and free_scalars and rng.random() < 0.3:
                    targets.append(rng.choice(free_scalars))
                else:
                    name = rng.choice(free_arrays)
                    sub = self.subscript(indices, force_innermost=True)
                    targets.append(f"{name}[{sub}]")
            for target in targets:
                value = self.expr(rng.randint(1, 2), indices)
                lines.append(f"  {target} = {value};")
            lines.append("} else {")
            for target in targets:
                value = self.expr(rng.randint(1, 2), indices)
                lines.append(f"  {target} = {value};")
            lines.append("}")
            return lines, 2 * width
        used = width
        for _ in range(width):
            lines.append("  " + self.statement(indices, forbid=forbid))
        if rng.random() < 0.5:
            lines.append("} else {")
            for _ in range(rng.randint(1, 2)):
                lines.append("  " + self.statement(indices, forbid=forbid))
                used += 1
            lines.append("}")
        else:
            lines.append("}")
        return lines, used

    def packable_family(self, width: int) -> List[str]:
        """Isomorphic statements over adjacent elements — the bread and
        butter of SLP; without these most cases never vectorize."""
        rng = self.rng
        dst = rng.choice(self.arrays)
        srcs = [rng.choice(self.arrays) for _ in range(rng.randint(1, 2))]
        base = rng.randrange(0, 32)
        bases = [rng.randrange(0, 32) for _ in srcs]
        op = rng.choice(_BINOPS)
        out: List[str] = []
        for lane in range(width):
            refs = [f"{s}[{b + lane}]" for s, b in zip(srcs, bases)]
            if len(refs) == 1:
                refs.append(rng.choice(self.consts))
            if op in ("min", "max"):
                value = f"{op}({refs[0]}, {refs[1]})"
            else:
                value = f"({refs[0]} {op} {refs[1]})"
            out.append(f"{dst}[{base + lane}] = {value};")
        return out

    def statement(
        self, indices: List[str], forbid: frozenset = frozenset()
    ) -> str:
        rng = self.rng
        scalars = [s for s in self.scalars if s not in forbid]
        if not indices and scalars and rng.random() < 0.3:
            target = rng.choice(scalars)
        else:
            # Loop targets must involve the innermost index (see the
            # module docstring) — and scalar targets stay out of loops.
            arrays = [a for a in self.arrays if a not in forbid]
            name = rng.choice(arrays)
            sub = self.subscript(indices, force_innermost=True)
            target = f"{name}[{sub}]"
        return f"{target} = {self.expr(rng.randint(1, 3), indices)};"

    def loop_nest(self) -> List[str]:
        rng = self.rng
        lines: List[str] = []
        nested = rng.random() < 0.35
        if nested:
            outer_trips = rng.choice(_OUTER_TRIPS)
            inner_trips = rng.choice(_INNER_TRIPS)
            lines.append(f"for (i = 0; i < {outer_trips}; i += 1) {{")
            lines.append(f"  for (j = 0; j < {inner_trips}; j += 1) {{")
            for _ in range(rng.randint(1, 4)):
                lines.append("    " + self.statement(["i", "j"]))
            lines.append("  }")
            lines.append("}")
        else:
            step = rng.choice((1, 1, 1, 2))
            stop = rng.randint(4, 70)
            lines.append(f"for (i = 0; i < {stop}; i += {step}) {{")
            if rng.random() < 0.15:
                lines.append("  " + rng.choice(_COMMENTS))
            for _ in range(rng.randint(1, 5)):
                lines.append("  " + self.statement(["i"]))
            if self.conditional and rng.random() < 0.5:
                region, _ = self.if_region(["i"], 3)
                lines.extend("  " + line for line in region)
            lines.append("}")
        return lines


# ---------------------------------------------------------------------------
# Differential oracle
# ---------------------------------------------------------------------------


@dataclass
class Divergence:
    """One configuration that disagreed with the scalar baseline."""

    seed: int
    kind: str         # "crash" | "memory" | "report" | "plan" | "interpret"
    variant: str
    grouping_engine: str
    sim_engine: Optional[str]
    detail: str
    source: str
    reduced_source: Optional[str] = None

    def summary(self) -> str:
        where = f"{self.variant}/{self.grouping_engine}"
        if self.sim_engine:
            where += f"/{self.sim_engine}"
        return f"seed {self.seed}: {self.kind} divergence under {where}"


@dataclass
class CaseResult:
    status: str                   # "ok" | "skipped" | "diverged"
    divergence: Optional[Divergence] = None


def _snapshot(memory, program: Program):
    return (
        {name: memory.arrays[name].copy() for name in program.arrays},
        {name: memory.scalars[name] for name in program.scalars},
    )


def _finite(snapshot) -> bool:
    arrays, scalars = snapshot
    return all(np.isfinite(a).all() for a in arrays.values()) and all(
        np.isfinite(v) for v in scalars.values()
    )


def _first_mismatch(baseline, snapshot) -> Optional[str]:
    base_arrays, base_scalars = baseline
    arrays, scalars = snapshot
    for name, expected in base_arrays.items():
        if not np.array_equal(expected, arrays[name]):
            bad = int(np.flatnonzero(expected != arrays[name])[0])
            return (
                f"{name}[{bad}]: scalar={expected[bad]!r} "
                f"vector={arrays[name][bad]!r}"
            )
    for name, expected in base_scalars.items():
        if scalars[name] != expected:
            return f"{name}: scalar={expected!r} vector={scalars[name]!r}"
    return None


def differential_check(
    program: Program,
    machine: Optional[MachineModel] = None,
    options: Optional[CompilerOptions] = None,
    sim_seed: int = 0,
    case_seed: int = 0,
) -> CaseResult:
    """Compare every vector configuration against the scalar baseline.

    Crashes anywhere (including in the baseline) count as divergences;
    cases whose scalar result is non-finite are skipped.
    """
    machine = machine or intel_dunnington()
    base = options or CompilerOptions()
    source = format_program(program)

    def diverged(kind, variant, grouping, sim_engine, detail):
        return CaseResult(
            "diverged",
            Divergence(
                case_seed, kind, variant, grouping, sim_engine, detail,
                source,
            ),
        )

    try:
        scalar = compile_program(program, Variant.SCALAR, machine, base)
        _, memory = Simulator(machine, engine="reference").run(
            scalar.plan, seed=sim_seed
        )
    except Exception as exc:
        return diverged(
            "crash", "scalar", "-", "reference", format_failure(exc)
        )
    baseline = _snapshot(memory, program)
    if not _finite(baseline):
        return CaseResult("skipped")

    # Programs with conditional regions get a second, independent
    # oracle: a tree-walking interpreter with true branch semantics
    # (only the taken branch executes). If-conversion — which every
    # compiled variant above runs through, including SCALAR — must
    # preserve those semantics bit for bit.
    if has_regions(program):
        from .vm.simulator import interpret_program

        try:
            interpreted = interpret_program(program, seed=sim_seed)
        except Exception as exc:
            return diverged(
                "crash", "interpreter", "-", None, format_failure(exc)
            )
        mismatch = _first_mismatch(
            baseline, _snapshot(interpreted, program)
        )
        if mismatch is not None:
            return diverged(
                "interpret", "scalar", "-", "interpreter", mismatch
            )

    sim_engines = engine_names("sim")
    for variant in VECTOR_VARIANTS:
        # The grouping engine only participates in the holistic
        # decision loop; the greedy baselines never touch it.
        holistic = variant in (Variant.GLOBAL, Variant.GLOBAL_LAYOUT)
        groupings = engine_names("grouping") if holistic else (
            "incremental",
        )
        plans = {}
        for grouping in groupings:
            opts = replace(base, grouping_engine=grouping)
            try:
                result = compile_program(program, variant, machine, opts)
            except Exception as exc:
                return diverged(
                    "crash", variant.value, grouping, None,
                    format_failure(exc),
                )
            plans[grouping] = result
            reports = {}
            for sim_engine in sim_engines:
                try:
                    report, mem = Simulator(machine, engine=sim_engine).run(
                        result.plan, seed=sim_seed
                    )
                except Exception as exc:
                    return diverged(
                        "crash", variant.value, grouping, sim_engine,
                        format_failure(exc),
                    )
                mismatch = _first_mismatch(
                    baseline, _snapshot(mem, program)
                )
                if mismatch is not None:
                    return diverged(
                        "memory", variant.value, grouping, sim_engine,
                        mismatch,
                    )
                reports[sim_engine] = report
            # Every engine must produce a bit-identical ExecutionReport
            # — cycles, charge buckets, cache hits/misses, provenance —
            # not just the same memory. Dataclass equality covers all
            # fields.
            for sim_engine, report in reports.items():
                if sim_engine == "reference":
                    continue
                if report != reports["reference"]:
                    return diverged(
                        "report", variant.value, grouping, sim_engine,
                        f"{sim_engine} ExecutionReport differs from "
                        "reference",
                    )
        # Grouping engines sharing a plan-equivalence class (see
        # ``Engine.equivalence``) must emit bit-identical plans: both
        # greedy loops are in class "greedy"; the optimal engine may
        # legitimately choose different groups, so it sits alone and is
        # only held to the semantic checks above.
        classes: Dict[str, List[str]] = {}
        for grouping in plans:
            tag = resolve("grouping", grouping).equivalence
            if tag is not None:
                classes.setdefault(tag, []).append(grouping)
        for tag, members in classes.items():
            if len(members) < 2:
                continue
            texts = {
                g: disassemble_plan(plans[g].plan) for g in members
            }
            first = members[0]
            for other in members[1:]:
                if texts[other] != texts[first]:
                    return diverged(
                        "plan", variant.value, f"{first}+{other}", None,
                        f"grouping engines of class {tag!r} produced "
                        "different plans",
                    )
    return CaseResult("ok")


# ---------------------------------------------------------------------------
# Test-case reduction (greedy delta debugging)
# ---------------------------------------------------------------------------


def reduce_program(
    program: Program,
    predicate: Callable[[Program], bool],
    max_steps: int = 400,
) -> Program:
    """Greedily shrink ``program`` while ``predicate`` stays true.

    ``predicate`` must return True when the candidate still exhibits
    the failure being chased; candidates that raise are discarded.
    """
    current = program
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _candidates(current):
            steps += 1
            if steps > max_steps:
                break
            try:
                keep = predicate(candidate)
            except Exception:
                continue
            if keep:
                current = candidate
                improved = True
                break
    stripped = _strip_unused_decls(current)
    try:
        if predicate(stripped):
            return stripped
    except Exception:
        pass
    return current


def statement_count(program: Program) -> int:
    return sum(
        1 for block in program.blocks() for _ in block.flat_statements()
    )


def _rebuild(program: Program, body) -> Program:
    out = program.clone_shell()
    for item in body:
        out.add(item)
    return out


def _candidates(program: Program) -> Iterator[Program]:
    body = program.body
    if len(body) > 1:
        for i in range(len(body)):
            yield _rebuild(program, body[:i] + body[i + 1:])
    for i, item in enumerate(body):
        for reduced in _item_candidates(item):
            yield _rebuild(program, body[:i] + [reduced] + body[i + 1:])


def _item_candidates(item) -> Iterator:
    if isinstance(item, BasicBlock):
        yield from _block_candidates(item)
        return
    assert isinstance(item, Loop)
    yield from _loop_candidates(item, nested=item.inner is not None)


def _loop_candidates(loop: Loop, nested: bool) -> Iterator[Loop]:
    # Un-loop: a single-level loop becomes its body at the first
    # iteration (often enough to keep a packing bug alive).
    if loop.inner is None and len(loop.body):
        binding = {loop.index: Affine((), loop.start)}
        yield BasicBlock(
            [s.substitute_indices(binding) for s in loop.body]
        ).renumbered()
    # Shrink the trip count. Inner loops of a nest stay a multiple of
    # 16 so unrolling never needs a nested remainder loop.
    trips = (16,) if nested and loop.inner is None else (1, 2, 4, 8)
    for trip in trips:
        stop = loop.start + loop.step * trip
        if stop < loop.stop:
            yield replace(loop, stop=stop)
    for block in _block_candidates(loop.body):
        yield loop.with_body(block)
    if loop.inner is not None:
        for inner in _loop_candidates(loop.inner, nested=True):
            yield replace(loop, inner=inner)
        if len(loop.body):
            yield replace(loop, inner=None)


def _block_candidates(block: BasicBlock) -> Iterator[BasicBlock]:
    stmts = block.statements
    if len(stmts) > 1:
        for j in range(len(stmts)):
            yield BasicBlock(stmts[:j] + stmts[j + 1:]).renumbered()
    for j, item in enumerate(stmts):
        if isinstance(item, IfRegion):
            # Inline a branch (losing the condition entirely), then
            # structural shrinks of the region itself.
            yield BasicBlock(
                stmts[:j] + list(item.then_body) + stmts[j + 1:]
            ).renumbered()
            if item.else_body:
                yield BasicBlock(
                    stmts[:j] + list(item.else_body) + stmts[j + 1:]
                ).renumbered()
            for reduced in _region_candidates(item):
                yield BasicBlock(
                    stmts[:j] + [reduced] + stmts[j + 1:]
                ).renumbered()
            continue
        for expr in _expr_candidates(item.expr):
            new = Statement(item.sid, item.target, expr, item.pred)
            yield BasicBlock(
                [new if k == j else s for k, s in enumerate(stmts)]
            )


def _try_region(cond, then_body, else_body=()):
    try:
        return IfRegion(cond, then_body, else_body)
    except Exception:
        return None          # shrink produced an illegal region shape


def _region_candidates(region: IfRegion) -> Iterator[IfRegion]:
    candidates = []
    if region.else_body:
        candidates.append(_try_region(region.cond, region.then_body))
        for j in range(len(region.else_body)):
            candidates.append(
                _try_region(
                    region.cond,
                    region.then_body,
                    region.else_body[:j] + region.else_body[j + 1:],
                )
            )
    if len(region.then_body) > 1:
        for j in range(len(region.then_body)):
            candidates.append(
                _try_region(
                    region.cond,
                    region.then_body[:j] + region.then_body[j + 1:],
                    region.else_body,
                )
            )
    yield from (c for c in candidates if c is not None)


def _try_select(cond, on_true, on_false):
    try:
        return Select(cond, on_true, on_false)
    except Exception:
        return None          # shrink changed an operand's type


def _expr_candidates(expr) -> Iterator:
    if isinstance(expr, BinOp):
        yield expr.left
        yield expr.right
        for sub in _expr_candidates(expr.left):
            yield BinOp(expr.op, sub, expr.right)
        for sub in _expr_candidates(expr.right):
            yield BinOp(expr.op, expr.left, sub)
    elif isinstance(expr, UnOp):
        yield expr.operand
        for sub in _expr_candidates(expr.operand):
            yield UnOp(expr.op, sub)
    elif isinstance(expr, Select):
        yield expr.on_true
        yield expr.on_false
        for sub in _expr_candidates(expr.on_true):
            candidate = _try_select(expr.cond, sub, expr.on_false)
            if candidate is not None:
                yield candidate
        for sub in _expr_candidates(expr.on_false):
            candidate = _try_select(expr.cond, expr.on_true, sub)
            if candidate is not None:
                yield candidate


def _strip_unused_decls(program: Program) -> Program:
    used = set()
    for block in program.blocks():
        for item in block:
            leaves: List = []
            if isinstance(item, IfRegion):
                leaves.extend(item.cond.leaves())
                inner = item.statements()
            else:
                inner = iter((item,))
            for stmt in inner:
                leaves.append(stmt.target)
                leaves.extend(stmt.expr.leaves())
                if stmt.pred is not None:
                    leaves.extend(stmt.pred.cond.leaves())
            for leaf in leaves:
                if isinstance(leaf, ArrayRef):
                    used.add(leaf.array)
                elif isinstance(leaf, Var):
                    used.add(leaf.name)
    out = Program(program.name)
    for name, decl in program.arrays.items():
        if name in used:
            out.declare_array(name, decl.shape, decl.type)
    for name, decl in program.scalars.items():
        if name in used:
            out.declare_scalar(name, decl.type)
    for item in program.body:
        out.add(item)
    return out


# ---------------------------------------------------------------------------
# Deliberate-bug fixtures
# ---------------------------------------------------------------------------


def buggy_swap_mutator(
    schedule: Schedule, label: str
) -> Optional[Schedule]:
    """A deliberately broken "optimization" for exercising the oracle,
    the verifier, and graceful degradation: reverses the schedule of
    every block, which violates dependences whenever the block has any.

    Install via ``CompilerOptions(debug_schedule_mutator=
    buggy_swap_mutator)``.
    """
    if len(schedule.items) < 2:
        return None
    return Schedule(schedule.block, list(reversed(schedule.items)))


def buggy_peephole_mutator(body, label: str):
    """A deliberately broken peephole "rewrite" for exercising the
    3-engine oracle: reverses the sources of the first ``VPack`` that
    packs at least two distinct locations (so the compiled kernel
    computes with permuted lanes), or failing that rotates the first
    ``VShuffle``'s permutation. Returns ``None`` when the body offers
    nothing to break.

    Install via ``repro.vm.peephole.DEBUG_MUTATOR = \
buggy_peephole_mutator`` (kernel caching is bypassed while a mutator is
    active); the mutation tests prove ``differential_check`` reports the
    resulting divergence.
    """
    from .vm import VPack, VShuffle

    mutated = list(body)
    for i, instr in enumerate(mutated):
        if isinstance(instr, VPack) and len(set(instr.sources)) >= 2:
            mutated[i] = replace(
                instr, sources=tuple(reversed(instr.sources))
            )
            return mutated
    for i, instr in enumerate(mutated):
        if isinstance(instr, VShuffle) and len(set(instr.perm)) >= 2:
            rotated = instr.perm[1:] + instr.perm[:1]
            mutated[i] = replace(instr, perm=rotated)
            return mutated
    return None


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------


@dataclass
class FuzzReport:
    seed: int
    count: int
    ok: int = 0
    skipped: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.count} case(s) from seed {self.seed}: "
            f"{self.ok} ok, {self.skipped} skipped (non-finite), "
            f"{len(self.divergences)} divergence(s)"
        ]
        for div in self.divergences:
            lines.append(f"  {div.summary()}")
        return "\n".join(lines)


def match_predicate(
    divergence: Divergence,
    machine: Optional[MachineModel] = None,
    options: Optional[CompilerOptions] = None,
) -> Callable[[Program], bool]:
    """A reduction predicate: the same kind of divergence, under the
    same variant, still reproduces."""

    def predicate(candidate: Program) -> bool:
        result = differential_check(candidate, machine, options)
        found = result.divergence
        return (
            found is not None
            and found.kind == divergence.kind
            and found.variant == divergence.variant
        )

    return predicate


def fuzz(
    seed: int = 0,
    count: int = 100,
    machine: Optional[MachineModel] = None,
    options: Optional[CompilerOptions] = None,
    reduce_failures: bool = True,
    max_divergences: int = 10,
    on_case: Optional[Callable[[int, CaseResult], None]] = None,
    conditional: bool = False,
) -> FuzzReport:
    """Run a differential fuzzing campaign of ``count`` cases.

    Stops early after ``max_divergences`` failures; each recorded
    divergence carries the generating source and (when
    ``reduce_failures``) a reduced reproduction. ``conditional``
    switches on the if/else + select grammar.
    """
    machine = machine or intel_dunnington()
    report = FuzzReport(seed, count)
    for k in range(count):
        case = generate_case(seed + k, conditional=conditional)
        result = differential_check(
            case.program, machine, options, case_seed=case.seed
        )
        if result.status == "ok":
            report.ok += 1
        elif result.status == "skipped":
            report.skipped += 1
        else:
            div = result.divergence
            div = replace(div, source=case.source)
            if reduce_failures:
                reduced = reduce_program(
                    case.program, match_predicate(div, machine, options)
                )
                div = replace(div, reduced_source=format_program(reduced))
            report.divergences.append(div)
            if len(report.divergences) >= max_divergences:
                break
        if on_case is not None:
            on_case(k, result)
    return report


__all__ = [
    "CaseResult",
    "Divergence",
    "FuzzCase",
    "FuzzReport",
    "buggy_peephole_mutator",
    "buggy_swap_mutator",
    "differential_check",
    "fuzz",
    "generate_case",
    "match_predicate",
    "reduce_program",
    "statement_count",
]
