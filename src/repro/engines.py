"""Pluggable engine registry — the single source of truth for engine
names across the compiler, simulator, fuzzer, CLI, and service wire.

Two kinds of engine are registered here:

* ``"grouping"`` — statement-packing decision loops for
  :class:`repro.slp.grouping.BasicGrouping`.  A grouping factory takes
  the (fully constructed) ``BasicGrouping`` instance and returns its
  :class:`~repro.slp.grouping.GroupingTrace`; it must drive decisions
  through ``BasicGrouping._commit`` so the instance's ``decided`` state
  and the trace stay consistent.
* ``"sim"`` — execution engines for :class:`repro.vm.Simulator`.  A sim
  factory takes ``(simulator, plan, state)`` and returns the engine
  object to install on ``state.batched`` (or ``None`` for the plain
  interpreter loop).

Built-ins are pre-registered in their legacy order so existing tuple
constants (``grouping.ENGINES``, ``simulator.ENGINES``) and all literal
string options keep working verbatim.  Unknown names raise one
structured :class:`~repro.errors.OptionsError` listing what is
registered; duplicate registrations are rejected loudly.

``equivalence`` tags engines whose *emitted plans* must be bit-identical:
the differential fuzzer compares disassembled plans within each
equivalence class (both greedy grouping engines share ``"greedy"``; the
optimal engine may legitimately pick different groups, so it gets its
own class).  Engines registered without a class are only checked
semantically (memory state and reports).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from .errors import OptionsError

KINDS = ("grouping", "sim")


@dataclass(frozen=True)
class Engine:
    """One registered engine: identity, a one-line description for the
    ``repro engines`` listing, and the factory that builds it."""

    kind: str
    name: str
    description: str
    factory: Callable
    #: Plan-equivalence class: engines sharing a non-None tag must emit
    #: bit-identical plans (enforced by the differential fuzzer).
    equivalence: Optional[str] = None
    #: True when a completed run certifies its result optimal.
    proves_optimal: bool = False
    #: How the engine handles if-converted ``select``/``vselect`` forms:
    #: sim engines declare their execution strategy, grouping engines
    #: how predicated statements participate in packing. Engines
    #: registered before the predication subsystem default to "unknown".
    select_support: str = "unknown"


_REGISTRY: Dict[str, Dict[str, Engine]] = {kind: {} for kind in KINDS}


def register(
    kind: str,
    name: str,
    factory: Callable,
    *,
    description: str = "",
    equivalence: Optional[str] = None,
    proves_optimal: bool = False,
    select_support: str = "unknown",
) -> Engine:
    """Register an engine; raises :class:`OptionsError` on an unknown
    kind or a duplicate name (re-registration must be explicit via
    :func:`temporary_engine` or :func:`unregister`)."""
    if kind not in _REGISTRY:
        raise OptionsError(
            f"unknown engine kind {kind!r}; expected one of {KINDS}"
        )
    table = _REGISTRY[kind]
    if name in table:
        raise OptionsError(f"duplicate {kind} engine {name!r}")
    engine = Engine(
        kind=kind,
        name=name,
        description=description,
        factory=factory,
        equivalence=equivalence,
        proves_optimal=proves_optimal,
        select_support=select_support,
    )
    table[name] = engine
    return engine


def register_grouping_engine(name: str, factory: Callable, **kwargs) -> Engine:
    return register("grouping", name, factory, **kwargs)


def register_sim_engine(name: str, factory: Callable, **kwargs) -> Engine:
    return register("sim", name, factory, **kwargs)


def resolve(kind: str, name: str) -> Engine:
    """The single name-resolution path for every layer (compiler
    options, simulator, fuzzer, CLI, service wire).  Unknown names raise
    one structured error listing the registered engines."""
    if kind not in _REGISTRY:
        raise OptionsError(
            f"unknown engine kind {kind!r}; expected one of {KINDS}"
        )
    engine = _REGISTRY[kind].get(name)
    if engine is None:
        names = ", ".join(_REGISTRY[kind]) or "<none>"
        raise OptionsError(
            f"unknown {kind} engine {name!r}; registered engines: {names}"
        )
    return engine


def engine_names(kind: str) -> Tuple[str, ...]:
    """Registered names for one kind, in registration order."""
    if kind not in _REGISTRY:
        raise OptionsError(
            f"unknown engine kind {kind!r}; expected one of {KINDS}"
        )
    return tuple(_REGISTRY[kind])


def engines(kind: str) -> Tuple[Engine, ...]:
    """Registered :class:`Engine` records for one kind, in order."""
    if kind not in _REGISTRY:
        raise OptionsError(
            f"unknown engine kind {kind!r}; expected one of {KINDS}"
        )
    return tuple(_REGISTRY[kind].values())


def unregister(kind: str, name: str) -> None:
    """Remove an engine (tests and :func:`temporary_engine` only)."""
    _REGISTRY[kind].pop(name, None)


@contextmanager
def temporary_engine(
    kind: str, name: str, factory: Callable, **kwargs
) -> Iterator[Engine]:
    """Register an engine for the duration of a ``with`` block — the
    supported way for tests to exercise custom engines without leaking
    registrations across the process."""
    engine = register(kind, name, factory, **kwargs)
    try:
        yield engine
    finally:
        unregister(kind, name)


def markdown_table(kind: Optional[str] = None) -> str:
    """GitHub-markdown table of the registry — README's engine table is
    regenerated from this (``repro engines --markdown``)."""
    rows = []
    for k in KINDS if kind is None else (kind,):
        rows.extend(engines(k))
    lines = [
        "| kind | engine | description | select support |",
        "| --- | --- | --- | --- |",
    ]
    for engine in rows:
        lines.append(
            f"| {engine.kind} | `{engine.name}` | {engine.description} "
            f"| {engine.select_support} |"
        )
    return "\n".join(lines)


# -- built-in engines, in their legacy tuple order --------------------------


def _grouping_incremental(grouping):
    return grouping._run_incremental()


def _grouping_reference(grouping):
    return grouping._run_reference()


def _grouping_optimal(grouping):
    from .slp.optimal import run_optimal

    return run_optimal(grouping)


def _sim_reference(simulator, plan, state):
    return None


def _sim_batched(simulator, plan, state):
    from .vm.batched import BatchedEngine

    return BatchedEngine(state)


def _sim_compiled(simulator, plan, state):
    from .vm.compiled import CompiledEngine, load_plan_kernels

    kernels = load_plan_kernels(
        plan, simulator.machine, simulator.kernel_store
    )
    return CompiledEngine(state, plan, kernels)


register_grouping_engine(
    "incremental",
    _grouping_incremental,
    description="memoized greedy decision loop (lazy max-heap, dirty sets)",
    equivalence="greedy",
    select_support="predicate-aware packing",
)
register_grouping_engine(
    "reference",
    _grouping_reference,
    description="from-scratch greedy loop; the differential oracle",
    equivalence="greedy",
    select_support="predicate-aware packing",
)
register_grouping_engine(
    "optimal",
    _grouping_optimal,
    description="exact branch-and-bound packing; proves optimality or "
    "falls back to incremental on budget",
    equivalence="optimal",
    proves_optimal=True,
    select_support="predicate-aware packing",
)

register_sim_engine(
    "reference",
    _sim_reference,
    description="instruction-at-a-time interpreter; the semantic oracle",
    select_support="native (scalar select)",
)
register_sim_engine(
    "batched",
    _sim_batched,
    description="NumPy address/value streams with bulk cache replay",
    select_support="native (np.where blend)",
)
register_sim_engine(
    "compiled",
    _sim_compiled,
    description="per-loop NumPy codegen with peephole pass and kernel cache",
    select_support="native (emitted np.where)",
)
