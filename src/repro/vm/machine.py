"""Machine models — the cost side of the virtual SIMD machine.

``intel_dunnington`` and ``amd_phenom_ii`` carry the cache geometry of
Tables 1 and 2 and per-instruction-class cycle costs calibrated so the
*relative* behaviour the paper reports holds: SIMD ops amortize ALU work
across lanes, contiguous aligned superword memory operations are cheap,
per-lane gather/scatter packing is expensive, and the AMD part pays more
for packing/unpacking and shuffles than the Intel part (the paper's
explanation for its lower savings in Figure 20).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..ir.expr import COMPARE_OPS, OP_WEIGHTS
from .cache import CacheConfig

#: Relative ALU cost per operator (same table for scalar and vector —
#: lane parallelism, not per-op latency, is where SIMD wins). Shared
#: with the grouping profitability estimate via the IR's OP_WEIGHTS.
OP_COSTS: Dict[str, float] = dict(OP_WEIGHTS)


@dataclass(frozen=True)
class MachineModel:
    """Cost and capacity parameters of one target platform."""

    name: str
    datapath_bits: int
    vector_registers: int
    cores: int
    l1: CacheConfig

    # memory access costs (cycles, on an L1 hit; misses add l1.miss_penalty)
    scalar_load: float = 1.0
    scalar_store: float = 1.0
    scalar_move: float = 0.5      # register<->stack traffic for scalars
    vector_load: float = 1.0
    vector_store: float = 1.0
    unaligned_extra: float = 1.0  # added to vector_load/store when unaligned

    # packing / unpacking / permutation costs
    lane_insert: float = 1.0
    lane_extract: float = 1.0
    shuffle: float = 1.0
    broadcast: float = 1.0
    imm_vector: float = 1.0

    # parallel-run parameters (Figure 21's model); the barrier cost is
    # amortized over the application's many loop invocations
    sync_overhead_cycles: float = 5.0     # barrier cost per extra core
    bus_contention_per_op: float = 0.04   # extra cycles/mem-op/extra core

    # predication costs (if-converted control flow): the vselect/blend
    # that merges two value streams under a mask, and the vector compare
    # producing the mask. Machine-specific, like the packing costs.
    blend: float = 1.0
    compare: float = 1.0

    def op_cost(self, op: str) -> float:
        if op == "select":
            return self.blend
        if op in COMPARE_OPS:
            return self.compare
        return OP_COSTS[op]

    def lanes_for(self, element_bits: int) -> int:
        return self.datapath_bits // element_bits

    def with_datapath(self, datapath_bits: int) -> "MachineModel":
        """The same platform with a hypothetical SIMD width — Figure 18
        sweeps 128 through 1024 bits."""
        return replace(self, datapath_bits=datapath_bits)


def intel_dunnington() -> MachineModel:
    """Table 1: 12-core Intel Xeon E7450, 32KB/core 8-way L1D, 64B lines."""
    return MachineModel(
        name="intel-dunnington",
        datapath_bits=128,
        vector_registers=16,
        cores=12,
        l1=CacheConfig(
            size_bytes=32 * 1024, line_bytes=64, ways=8, miss_penalty=12.0
        ),
    )


def amd_phenom_ii() -> MachineModel:
    """Table 2: 4-core AMD Phenom II X4 945, 64KB/core 2-way L1D.

    Pack/unpack and shuffle costs are higher than on the Intel part:
    Section 7.2 attributes the AMD machine's smaller savings to "higher
    packing/unpacking costs".
    """
    return MachineModel(
        name="amd-phenom-ii",
        datapath_bits=128,
        vector_registers=16,
        cores=4,
        l1=CacheConfig(
            size_bytes=64 * 1024, line_bytes=64, ways=2, miss_penalty=14.0
        ),
        lane_insert=1.6,
        lane_extract=1.6,
        shuffle=1.5,
        broadcast=1.2,
        unaligned_extra=1.6,
        blend=1.4,
        compare=1.2,
    )


MACHINES = {
    "intel": intel_dunnington,
    "amd": amd_phenom_ii,
}
