"""The virtual SIMD machine: functional + timing simulation.

``Simulator.run`` executes an :class:`ExecutablePlan` instruction by
instruction against a :class:`Memory`, producing both the final machine
state (arrays + scalars, used by the differential correctness tests) and
an :class:`ExecutionReport` (dynamic instruction mix, pack/unpack
counts, cache statistics, cycle total — the quantities every figure of
the paper's evaluation is built from).
"""

from __future__ import annotations

import math
import os
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..engines import engine_names, resolve as resolve_engine_impl
from ..errors import SimulationError
from ..ir import ArrayRef, Const, Expr, Var
from ..perf import section as perf_section
from .cache import Cache
from .codegen import (
    CompiledCopy,
    CompiledLoop,
    CompiledStraight,
    CompiledUnit,
    ExecutablePlan,
)
from .isa import (
    ImmRef,
    Instruction,
    MemRef,
    PackMode,
    ScalarExec,
    ScalarRef,
    StoreMode,
    ValueRef,
    VOp,
    VPack,
    VShuffle,
    VStore,
)
from .machine import MachineModel
from .report import ExecutionReport, ProvenanceCost

def _ieee_div(a: float, b: float) -> float:
    """IEEE-754 total division: x/±0 is ±inf, ±0/±0 and nan/±0 are nan.
    The batched engine's NumPy lanes already behave this way; the
    reference interpreter must produce the same well-defined values
    instead of raising ZeroDivisionError, or the two engines diverge on
    programs that compute a zero and later divide by it."""
    if b != 0.0:
        return a / b
    if math.isnan(a) or a == 0.0:
        return math.nan
    return math.copysign(math.inf, a) * math.copysign(1.0, b)


_OP_FUNCS: Dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _ieee_div,
    "min": min,
    "max": max,
    "neg": lambda a: -a,
    "abs": abs,
    "sqrt": math.sqrt,
    # Comparisons produce float masks (1.0 / 0.0) — the scalar mirror of
    # a SIMD compare writing all-ones/all-zero lanes. All memory state
    # is float64 (see Memory), so these are bit-identical across the
    # reference/batched/compiled engines by construction.
    "<": lambda a, b: 1.0 if a < b else 0.0,
    "<=": lambda a, b: 1.0 if a <= b else 0.0,
    ">": lambda a, b: 1.0 if a > b else 0.0,
    ">=": lambda a, b: 1.0 if a >= b else 0.0,
    "==": lambda a, b: 1.0 if a == b else 0.0,
    "!=": lambda a, b: 1.0 if a != b else 0.0,
    # Both arms are eagerly evaluated (the SIMD blend model); every
    # operator is total, so this cannot trap where a branch would not.
    "select": lambda c, a, b: a if c != 0.0 else b,
}


class Memory:
    """Program state: flat numpy arrays plus a scalar environment.

    Array base addresses are assigned sequentially, aligned to the cache
    line, so the cache simulation sees a realistic address space.
    """

    def __init__(
        self,
        plan_or_program,
        seed: int = 0,
        line_bytes: int = 64,
    ):
        if isinstance(plan_or_program, ExecutablePlan):
            program = plan_or_program.program
            replicated = dict(plan_or_program.replicated_decls)
            rep_types = {
                unit.replication.new_name: program.arrays[
                    unit.replication.source
                ].type
                for unit in plan_or_program.units
                if isinstance(unit, CompiledCopy)
            }
        else:
            program = plan_or_program
            replicated = {}
            rep_types = {}
        self.program = program
        self.arrays: Dict[str, np.ndarray] = {}
        self.scalars: Dict[str, float] = {}
        self._base: Dict[str, int] = {}
        self._elem_bytes: Dict[str, int] = {}
        next_base = line_bytes

        for decl in program.arrays.values():
            rng = _name_rng(seed, decl.name)
            if decl.type.is_float:
                data = rng.uniform(1.0, 2.0, decl.size)
            else:
                data = rng.integers(1, 100, decl.size).astype(np.float64)
            self.arrays[decl.name] = data
            self._base[decl.name] = next_base
            self._elem_bytes[decl.name] = decl.type.bytes
            next_base += _aligned(decl.size * decl.type.bytes, line_bytes)

        for name, elements in replicated.items():
            elem = rep_types.get(name)
            bytes_per = elem.bytes if elem else 8
            self.arrays[name] = np.zeros(elements, dtype=np.float64)
            self._base[name] = next_base
            self._elem_bytes[name] = bytes_per
            next_base += _aligned(elements * bytes_per, line_bytes)

        for decl in program.scalars.values():
            rng = _name_rng(seed, decl.name)
            if decl.type.is_float:
                self.scalars[decl.name] = float(rng.uniform(1.0, 2.0))
            else:
                self.scalars[decl.name] = float(rng.integers(1, 100))

    def read(self, array: str, flat: int) -> float:
        return float(self.arrays[array][flat])

    def write(self, array: str, flat: int, value: float) -> None:
        self.arrays[array][flat] = value

    def address(self, array: str, flat: int) -> int:
        return self._base[array] + flat * self._elem_bytes[array]

    def elem_bytes(self, array: str) -> int:
        return self._elem_bytes[array]

    # -- test support -----------------------------------------------------------

    def state_equal(self, other: "Memory", rtol: float = 0.0) -> bool:
        """Exact (or tolerant) equality of shared arrays and scalars."""
        shared = set(self.arrays) & set(other.arrays)
        for name in shared:
            a, b = self.arrays[name], other.arrays[name]
            if len(a) != len(b):
                return False
            if rtol:
                if not np.allclose(a, b, rtol=rtol):
                    return False
            elif not np.array_equal(a, b, equal_nan=True):
                return False
        for name in set(self.scalars) & set(other.scalars):
            a, b = self.scalars[name], other.scalars[name]
            if rtol:
                if not math.isclose(a, b, rel_tol=rtol):
                    return False
            elif a != b and not (math.isnan(a) and math.isnan(b)):
                return False
        return True


def _aligned(size: int, align: int) -> int:
    return ((size + align - 1) // align) * align


def _name_rng(seed: int, name: str) -> np.random.Generator:
    """Per-name RNG: initial contents depend only on (seed, name), never
    on how many other declarations exist — so a variant that adds
    replicated arrays still starts from bit-identical input state (the
    differential tests rely on this)."""
    import zlib

    return np.random.default_rng([seed, zlib.crc32(name.encode("utf-8"))])


def evaluate_expr(expr: Expr, env: Dict[str, int], memory: Memory) -> float:
    if isinstance(expr, Const):
        return float(expr.value)
    if isinstance(expr, Var):
        return memory.scalars[expr.name]
    if isinstance(expr, ArrayRef):
        decl = memory.program.arrays[expr.array]
        flat = 0
        for subscript, dim in zip(expr.subscripts, decl.shape):
            flat = flat * dim + subscript.evaluate(env)
        return memory.read(expr.array, flat)
    kids = expr.children()
    values = [evaluate_expr(k, env, memory) for k in kids]
    return _OP_FUNCS[getattr(expr, "op")](*values)


# ---------------------------------------------------------------------------
# Branch-semantics interpreter (the if-conversion oracle)
# ---------------------------------------------------------------------------


def _interpret_statement(stmt, env: Dict[str, int], memory: Memory) -> None:
    value = evaluate_expr(stmt.expr, env, memory)
    target = stmt.target
    if isinstance(target, ArrayRef):
        decl = memory.program.arrays[target.array]
        flat = 0
        for subscript, dim in zip(target.subscripts, decl.shape):
            flat = flat * dim + subscript.evaluate(env)
        memory.write(target.array, flat, value)
    else:
        memory.scalars[target.name] = value


def _interpret_block(block, env: Dict[str, int], memory: Memory) -> None:
    from ..ir.block import IfRegion

    for item in block.statements:
        if isinstance(item, IfRegion):
            taken = (
                item.then_body
                if evaluate_expr(item.cond, env, memory) != 0.0
                else item.else_body
            )
            for stmt in taken:
                _interpret_statement(stmt, env, memory)
        else:
            _interpret_statement(item, env, memory)


def _interpret_loop(loop, env: Dict[str, int], memory: Memory) -> None:
    for value in loop.iter_values():
        env[loop.index] = value
        _interpret_block(loop.body, env, memory)
        if loop.inner is not None:
            _interpret_loop(loop.inner, env, memory)
    env.pop(loop.index, None)


def interpret_program(program, memory: Optional[Memory] = None, seed: int = 0) -> Memory:
    """Execute a program directly with *real branch* semantics.

    Conditional regions run only the taken branch — no if-conversion, no
    selects, no vectorization. This is the ground-truth oracle the
    if-conversion differential tests (and the fuzzer, for region-bearing
    programs) compare every engine's converted execution against.
    """
    from ..ir.block import Loop as _Loop

    memory = memory or Memory(program, seed=seed)
    env: Dict[str, int] = {}
    for item in program.body:
        if isinstance(item, _Loop):
            _interpret_loop(item, env, memory)
        else:
            _interpret_block(item, env, memory)
    return memory


#: Recognized execution engines, from the :mod:`repro.engines`
#: registry (kept as a tuple for backward compatibility). ``reference``
#: is the per-instruction interpreter below; ``batched`` is the
#: vectorized loop engine in :mod:`repro.vm.batched`, proven
#: report-identical by differential tests and falling back here
#: per-unit whenever a loop is not batchable; ``compiled`` additionally
#: emits one specialized NumPy function per affine loop
#: (:mod:`repro.vm.compiled`), cached across runs, and falls back to
#: the batched path per-unit. Engines registered via
#: ``repro.engines.register_sim_engine`` after import are resolved too;
#: this tuple snapshots the built-ins.
ENGINES = engine_names("sim")

#: Environment variable consulted when no engine is given explicitly —
#: lets existing harnesses (the fig16–fig21 benches, ``run_suite``
#: callers) switch engines without any signature changes.
ENGINE_ENV_VAR = "REPRO_SIM_ENGINE"


def resolve_engine(engine: Optional[str]) -> str:
    if engine is None:
        engine = os.environ.get(ENGINE_ENV_VAR) or "reference"
    resolve_engine_impl("sim", engine)
    return engine


class Simulator:
    """Executes plans with cycle/cache accounting.

    ``engine`` selects the execution strategy (see :data:`ENGINES`);
    ``None`` defers to the ``REPRO_SIM_ENGINE`` environment variable and
    then to the reference interpreter. ``kernel_store``, when given, is
    an :class:`repro.store.ArtifactStore` the compiled engine uses to
    persist emitted kernels across processes (warm service workers load
    instead of re-emitting).
    """

    def __init__(
        self,
        machine: MachineModel,
        engine: Optional[str] = None,
        kernel_store=None,
    ):
        self.machine = machine
        self.engine = resolve_engine(engine)
        self.kernel_store = kernel_store

    def run(
        self,
        plan: ExecutablePlan,
        memory: Optional[Memory] = None,
        seed: int = 0,
    ) -> Tuple[ExecutionReport, Memory]:
        with perf_section("simulate"):
            memory = memory or Memory(plan, seed=seed)
            report = ExecutionReport()
            cache = Cache(self.machine.l1)
            state = _RunState(self.machine, memory, report, cache)
            impl = resolve_engine_impl("sim", self.engine)
            state.batched = impl.factory(self, plan, state)
            env: Dict[str, int] = {}
            for unit in plan.units:
                self._run_unit(unit, env, state)
            report.cache_hits = cache.hits
            report.cache_misses = cache.misses
            return report, memory

    # -- unit execution -------------------------------------------------------------

    def _run_unit(self, unit: CompiledUnit, env: Dict[str, int], state) -> None:
        if isinstance(unit, CompiledStraight):
            for instr, sink in _prepared_block(unit.instructions, state.report):
                state.execute_decoded(instr, sink, env)
            return
        if isinstance(unit, CompiledCopy):
            if state.batched is None or not state.batched.run_copy(unit):
                state.run_copy(unit)
            return
        assert isinstance(unit, CompiledLoop)
        for instr, sink in _prepared_block(unit.preheader, state.report):
            state.execute_decoded(instr, sink, env)
        if state.batched is not None and state.batched.run_loop(unit, env):
            return
        spec = unit.spec
        trips = range(spec.start, spec.stop, spec.step)
        body = _prepared_block(unit.body, state.report) if trips else ()
        inner = unit.inner
        execute = state.execute_decoded
        for value in trips:
            env[spec.index] = value
            for instr, sink in body:
                execute(instr, sink, env)
            if inner is not None:
                self._run_unit(inner, env, state)
        env.pop(spec.index, None)


def _prepared_block(
    instructions, report: ExecutionReport
) -> List[Tuple[Instruction, Optional[ProvenanceCost]]]:
    """Pair each instruction with its provenance sink (or None).

    Resolving ``getattr(instr, "prov", None)`` plus the provenance-dict
    lookup once per unit entry keeps both out of the per-iteration hot
    dispatch. The getattr default matters: plans unpickled from
    pre-provenance cache entries lack the attribute entirely.
    """
    prepared = []
    provenance = report.provenance
    for instr in instructions:
        prov = getattr(instr, "prov", None)
        sink = None
        if prov is not None:
            sink = provenance.get(prov)
            if sink is None:
                sink = provenance[prov] = ProvenanceCost()
        prepared.append((instr, sink))
    return prepared


class _RunState:
    """Per-run mutable execution state and the instruction semantics."""

    def __init__(
        self,
        machine: MachineModel,
        memory: Memory,
        report: ExecutionReport,
        cache: Cache,
    ):
        self.machine = machine
        self.memory = memory
        self.report = report
        self.cache = cache
        self.vregs: Dict[int, Tuple[float, ...]] = {}
        #: Set by ``Simulator.run`` when the batched engine is active.
        self.batched = None

    # -- memory with cache accounting ----------------------------------------------

    def _touch(self, array: str, flat: int, size_bytes: int) -> None:
        address = self.memory.address(array, flat)
        lines, misses = self.cache.access_stats(address, size_bytes)
        report = self.report
        report.array_accesses[array] = (
            report.array_accesses.get(array, 0) + lines
        )
        if misses:
            report.array_misses[array] = (
                report.array_misses.get(array, 0) + misses
            )
            report.charge_miss(misses, self.machine.l1.miss_penalty)

    def read_ref(self, ref: ValueRef, env: Dict[str, int]) -> float:
        if isinstance(ref, ImmRef):
            return float(ref.value)
        if isinstance(ref, ScalarRef):
            return self.memory.scalars[ref.name]
        assert isinstance(ref, MemRef)
        flat = ref.flat.evaluate(env)
        return self.memory.read(ref.array, flat)

    def write_ref(self, ref: ValueRef, value: float, env: Dict[str, int]) -> None:
        if isinstance(ref, ScalarRef):
            self.memory.scalars[ref.name] = value
            return
        assert isinstance(ref, MemRef)
        flat = ref.flat.evaluate(env)
        self.memory.write(ref.array, flat, value)

    # -- dispatch ----------------------------------------------------------------------

    def execute(self, instr: Instruction, env: Dict[str, int]) -> None:
        prov = getattr(instr, "prov", None)
        sink = None
        if prov is not None:
            sink = self.report.provenance.get(prov)
            if sink is None:
                sink = self.report.provenance[prov] = ProvenanceCost()
        self.execute_decoded(instr, sink, env)

    def execute_decoded(
        self,
        instr: Instruction,
        sink: Optional[ProvenanceCost],
        env: Dict[str, int],
    ) -> None:
        """Dispatch one instruction whose provenance sink was resolved
        at unit entry (see ``_prepared_block``). While the sink is
        installed on the report, every charge — including L1 miss
        penalties — is mirrored into its buckets."""
        report = self.report
        if sink is not None:
            sink.instructions += 1
            report.sink = sink
        if isinstance(instr, ScalarExec):
            self._exec_scalar(instr, env)
        elif isinstance(instr, VPack):
            self._exec_pack(instr, env)
        elif isinstance(instr, VOp):
            self._exec_vop(instr)
        elif isinstance(instr, VShuffle):
            self._exec_shuffle(instr)
        elif isinstance(instr, VStore):
            self._exec_store(instr, env)
        else:  # pragma: no cover - defensive
            report.sink = None
            raise SimulationError(f"unknown instruction {instr!r}")
        if sink is not None:
            report.sink = None
            if isinstance(instr, VShuffle):
                sink.shuffles += 1

    def _exec_scalar(self, instr: ScalarExec, env: Dict[str, int]) -> None:
        machine, report = self.machine, self.report
        for load in instr.loads:
            if isinstance(load, MemRef):
                flat = load.flat.evaluate(env)
                self._touch(load.array, flat, self.memory.elem_bytes(load.array))
                report.charge("scalar_load", 1, machine.scalar_load)
            else:
                report.charge("scalar_move", 1, machine.scalar_move)
        for op in instr.ops:
            report.charge("scalar_op", 1, machine.op_cost(op))
        value = evaluate_expr(instr.statement.expr, env, self.memory)
        if isinstance(instr.store, MemRef):
            flat = instr.store.flat.evaluate(env)
            self._touch(
                instr.store.array, flat, self.memory.elem_bytes(instr.store.array)
            )
            report.charge("scalar_store", 1, machine.scalar_store)
        else:
            report.charge("scalar_move", 1, machine.scalar_move)
        self.write_ref(instr.store, value, env)

    def _exec_pack(self, instr: VPack, env: Dict[str, int]) -> None:
        machine, report = self.machine, self.report
        lanes = len(instr.sources)
        mode = instr.mode
        if mode is PackMode.CONTIG_ALIGNED or mode is PackMode.CONTIG_UNALIGNED:
            first = instr.sources[0]
            assert isinstance(first, MemRef)
            flat = first.flat.evaluate(env)
            width = lanes * self.memory.elem_bytes(first.array)
            self._touch(first.array, flat, width)
            cost = machine.vector_load
            if mode is PackMode.CONTIG_UNALIGNED:
                cost += machine.unaligned_extra
            report.charge("vector_load", 1, cost)
        elif mode is PackMode.SCALAR_CONTIG:
            report.charge("vector_load", 1, machine.vector_load)
        elif mode is PackMode.IMMEDIATE:
            report.charge("imm_vector", 1, machine.imm_vector)
        elif mode is PackMode.BROADCAST:
            first = instr.sources[0]
            if isinstance(first, MemRef):
                flat = first.flat.evaluate(env)
                self._touch(
                    first.array, flat, self.memory.elem_bytes(first.array)
                )
                report.charge("pack_mem_load", 1, machine.scalar_load)
            elif isinstance(first, ScalarRef):
                report.charge("pack_scalar_move", 1, machine.scalar_move)
            report.charge("broadcast", 1, machine.broadcast)
        else:  # GATHER / SCALAR_GATHER / MIXED
            for source in instr.sources:
                if isinstance(source, MemRef):
                    flat = source.flat.evaluate(env)
                    self._touch(
                        source.array, flat, self.memory.elem_bytes(source.array)
                    )
                    report.charge("pack_mem_load", 1, machine.scalar_load)
                elif isinstance(source, ScalarRef):
                    report.charge("pack_scalar_move", 1, machine.scalar_move)
                report.charge("lane_insert", 1, machine.lane_insert)
        self.vregs[instr.dst] = tuple(
            self.read_ref(src, env) for src in instr.sources
        )

    def _exec_vop(self, instr: VOp) -> None:
        self.report.charge("vector_op", 1, self.machine.op_cost(instr.op))
        fn = _OP_FUNCS[instr.op]
        operands = [self.vregs[s] for s in instr.srcs]
        self.vregs[instr.dst] = tuple(
            fn(*[reg[lane] for reg in operands]) for lane in range(instr.lanes)
        )

    def _exec_shuffle(self, instr: VShuffle) -> None:
        self.report.charge("shuffle", 1, self.machine.shuffle)
        src = self.vregs[instr.src]
        self.vregs[instr.dst] = tuple(src[i] for i in instr.perm)

    def _exec_store(self, instr: VStore, env: Dict[str, int]) -> None:
        machine, report = self.machine, self.report
        values = self.vregs[instr.src]
        mode = instr.mode
        if mode is StoreMode.CONTIG_ALIGNED or mode is StoreMode.CONTIG_UNALIGNED:
            first = instr.targets[0]
            assert isinstance(first, MemRef)
            flat = first.flat.evaluate(env)
            width = len(instr.targets) * self.memory.elem_bytes(first.array)
            self._touch(first.array, flat, width)
            cost = machine.vector_store
            if mode is StoreMode.CONTIG_UNALIGNED:
                cost += machine.unaligned_extra
            report.charge("vector_store", 1, cost)
        elif mode is StoreMode.SCALAR_CONTIG:
            report.charge("vector_store", 1, machine.vector_store)
        else:  # SCATTER / SCALAR_SCATTER
            for target in instr.targets:
                report.charge("lane_extract", 1, machine.lane_extract)
                if isinstance(target, MemRef):
                    flat = target.flat.evaluate(env)
                    self._touch(
                        target.array, flat, self.memory.elem_bytes(target.array)
                    )
                    report.charge("unpack_mem_store", 1, machine.scalar_store)
                else:
                    report.charge("unpack_scalar_move", 1, machine.scalar_move)
        for target, value in zip(instr.targets, values):
            self.write_ref(target, value, env)

    # -- layout replication copies ---------------------------------------------------

    def run_copy(self, unit: CompiledCopy) -> None:
        """Materialize a replicated array.

        The per-element cost (and its misses) is charged divided by the
        amortization factor — the paper's applications execute the
        optimized loop nest many times per replication. The copy *does*
        warm the cache with the lines it touches (it runs immediately
        before the kernel, and on every invocation after the first the
        replica is as warm as the original array would have been), so
        the kernel is not charged phantom cold misses for the replica.
        """
        rep = unit.replication
        src = self.memory.arrays[rep.source]
        dst = self.memory.arrays[rep.new_name]
        misses = 0
        for dst_index, src_index in rep.copy_pairs():
            dst[dst_index] = src[src_index]
            misses += self.cache.access(
                self.memory.address(rep.source, src_index),
                self.memory.elem_bytes(rep.source),
            )
            misses += self.cache.access(
                self.memory.address(rep.new_name, dst_index),
                self.memory.elem_bytes(rep.new_name),
            )
        per_element = self.machine.scalar_load + self.machine.scalar_store
        amortized = (
            rep.elements * per_element
            + misses * self.machine.l1.miss_penalty
        ) / unit.amortization
        self.report.bump("layout_copy_element", rep.elements)
        self.report.add_extra_cycles(amortized)
