"""The multicore execution model behind Figure 21.

The paper runs the NAS benchmarks on 1–12 cores and reports the
execution-time reduction of Global / Global+Layout over the scalar code
*at the same core count*, observing that "the results become slightly
better when we increase the number of cores, mostly due to the
less-than-perfect scalability of the original applications."

We model a data-parallel OpenMP-style execution: each of ``P`` cores
runs the kernel over a ``1/P`` slice of the iteration space with its own
private L1, plus two parallel overheads:

* a small fixed synchronization cost per extra core (barriers), hitting
  both versions equally, and
* **shared-bus contention**: every memory operation gets slower as more
  cores compete for the front-side bus (the Dunnington machine of Table
  1 is an FSB design). The scalar code performs more memory operations
  per iteration than the SLP-optimized code, so its slice time degrades
  *faster* with the core count — this is the "less-than-perfect
  scalability of the original applications" that makes the relative SLP
  benefit tick slightly upward at higher core counts in Figure 21.

``parallel_cycles`` combines a simulated slice time with those
overheads; the Figure 21 harness does the slicing by rebuilding each
kernel with ``n / P`` iterations.
"""

from __future__ import annotations

from ..errors import SimulationError
from dataclasses import dataclass
from typing import Sequence

from .machine import MachineModel
from .report import reduction


def parallel_cycles(
    slice_cycles: float,
    cores: int,
    machine: MachineModel,
    memory_ops: int = 0,
) -> float:
    """Wall-clock cycles of a ``P``-core run given one core's slice time
    and the number of memory operations that slice performs."""
    if cores < 1:
        raise SimulationError("need at least one core")
    sync = machine.sync_overhead_cycles * (cores - 1)
    contention = (
        machine.bus_contention_per_op * (cores - 1) * memory_ops
    )
    return slice_cycles + sync + contention


@dataclass(frozen=True)
class MulticorePoint:
    """One (core count, variant) observation for Figure 21."""

    cores: int
    scalar_cycles: float
    variant_cycles: float

    @property
    def reduction(self) -> float:
        return reduction(self.scalar_cycles, self.variant_cycles)


def speedup_curve(points: Sequence[MulticorePoint]) -> Sequence[float]:
    return [p.reduction for p in points]
