"""Human-readable disassembly of executable plans.

``disassemble_plan`` renders the virtual vector ISA the code generator
produced — the closest thing this reproduction has to inspecting the
SIMD assembly the paper's SUIF backend emitted. Used by the CLI's
``--emit-plan`` and by tests that assert on emitted code shape.
"""

from __future__ import annotations

from typing import Iterable, List

from .codegen import (
    CompiledCopy,
    CompiledLoop,
    CompiledStraight,
    CompiledUnit,
    ExecutablePlan,
)
from .isa import (
    ImmRef,
    Instruction,
    MemRef,
    ScalarExec,
    ScalarRef,
    ValueRef,
    VOp,
    VPack,
    VShuffle,
    VStore,
)


def format_ref(ref: ValueRef) -> str:
    if isinstance(ref, ScalarRef):
        return f"${ref.name}"
    if isinstance(ref, MemRef):
        return f"{ref.array}[{ref.flat}]"
    assert isinstance(ref, ImmRef)
    return f"#{ref.value}"


def format_instruction(instr: Instruction) -> str:
    if isinstance(instr, ScalarExec):
        return f"scalar  {instr.statement}"
    if isinstance(instr, VPack):
        lanes = ", ".join(format_ref(r) for r in instr.sources)
        return f"vpack   v{instr.dst} <- [{lanes}]  ({instr.mode.value})"
    if isinstance(instr, VOp):
        srcs = ", ".join(f"v{s}" for s in instr.srcs)
        return f"vop.{instr.op:<4} v{instr.dst} <- {srcs}  (x{instr.lanes})"
    if isinstance(instr, VShuffle):
        perm = ",".join(str(i) for i in instr.perm)
        return f"vshuf   v{instr.dst} <- v{instr.src} [{perm}]"
    if isinstance(instr, VStore):
        lanes = ", ".join(format_ref(r) for r in instr.targets)
        return f"vstore  [{lanes}] <- v{instr.src}  ({instr.mode.value})"
    raise TypeError(f"unknown instruction {instr!r}")


def _format_unit(unit: CompiledUnit, indent: int = 0) -> List[str]:
    pad = "  " * indent
    lines: List[str] = []
    if isinstance(unit, CompiledStraight):
        lines.append(f"{pad}block:")
        for instr in unit.instructions:
            lines.append(f"{pad}  {format_instruction(instr)}")
        return lines
    if isinstance(unit, CompiledCopy):
        rep = unit.replication
        lines.append(
            f"{pad}replicate {rep.new_name}[{rep.elements}] "
            f"from {rep.source} "
            f"(lanes={rep.lanes}, loop {rep.loop.index}="
            f"{rep.loop.start}..{rep.loop.stop}:{rep.loop.step}, "
            f"amortized /{unit.amortization:g})"
        )
        return lines
    assert isinstance(unit, CompiledLoop)
    spec = unit.spec
    lines.append(
        f"{pad}loop {spec.index} = {spec.start}..{spec.stop} "
        f"step {spec.step}:"
    )
    if unit.preheader:
        lines.append(f"{pad}  preheader:")
        for instr in unit.preheader:
            lines.append(f"{pad}    {format_instruction(instr)}")
    if unit.body:
        lines.append(f"{pad}  body:")
        for instr in unit.body:
            lines.append(f"{pad}    {format_instruction(instr)}")
    if unit.inner is not None:
        lines.extend(_format_unit(unit.inner, indent + 1))
    return lines


def disassemble_plan(plan: ExecutablePlan) -> str:
    """The whole plan as indented text."""
    lines: List[str] = []
    for arena in plan.arenas.values():
        slots = ", ".join(
            f"{name}@{offset}" for name, offset in sorted(
                arena.slots.items(), key=lambda kv: kv[1]
            )
        )
        lines.append(f"arena {arena.type.name}: {slots}")
    for unit in plan.units:
        lines.extend(_format_unit(unit))
    return "\n".join(lines) + "\n"


def instruction_histogram(plan: ExecutablePlan) -> dict:
    """Static instruction counts by mnemonic (per class, not dynamic)."""
    counts: dict = {}

    def visit(instrs: Iterable[Instruction]) -> None:
        for instr in instrs:
            name = type(instr).__name__
            counts[name] = counts.get(name, 0) + 1

    def walk(unit: CompiledUnit) -> None:
        if isinstance(unit, CompiledStraight):
            visit(unit.instructions)
        elif isinstance(unit, CompiledLoop):
            visit(unit.preheader)
            visit(unit.body)
            if unit.inner is not None:
                walk(unit.inner)
        else:
            counts["CompiledCopy"] = counts.get("CompiledCopy", 0) + 1

    for unit in plan.units:
        walk(unit)
    return counts
