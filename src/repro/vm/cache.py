"""A set-associative LRU data cache.

The machine models (Tables 1 and 2) give each platform its L1
parameters; the simulator routes every array-element access through this
cache so effects like the extra footprint of replicated arrays (Section
7.2: "data replication ... has a negative impact on the cache
behavior") show up in the measured cycle counts.

Each set is a dict used as an ordered set (insertion order == LRU
order, oldest first): a hit deletes and re-inserts the line to move it
to the MRU end, a fill past capacity evicts the first key. This is
O(1) per access where the previous list representation paid an
O(ways) scan plus an O(ways) ``list.remove`` shuffle.
"""

from __future__ import annotations

from ..errors import SimulationError
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int
    line_bytes: int
    ways: int
    miss_penalty: float  # extra cycles per miss (next-level latency)

    @property
    def sets(self) -> int:
        sets = self.size_bytes // (self.line_bytes * self.ways)
        if sets <= 0:
            raise SimulationError("cache too small for its associativity")
        return sets


class Cache:
    """LRU set-associative cache over byte addresses."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: List[dict] = [{} for _ in range(config.sets)]
        self.hits = 0
        self.misses = 0
        #: Flat (lines, set_ids) snapshot of every resident line, each
        #: set's entries contiguous in LRU order (oldest first). Kept
        #: current by :meth:`replay_lines_bulk` so chained bulk replays
        #: never walk the per-set dicts; dropped on any dict mutation.
        self._vec: Optional[Tuple[np.ndarray, np.ndarray]] = None
        #: True while ``_sets`` lags behind ``_vec`` (bulk replays defer
        #: the dict rebuild until a dict-path caller needs it).
        self._stale = False

    def reset_stats(self) -> None:
        """Zero the hit/miss counters; cache contents are untouched."""
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Drop every cached line; hit/miss counters are untouched."""
        self._sets = [{} for _ in range(self.config.sets)]
        self._vec = None
        self._stale = False

    def _materialize(self) -> None:
        """Rebuild the per-set dicts from the vector snapshot."""
        vl, vs = self._vec
        sets = self._sets = [{} for _ in range(self.config.sets)]
        starts = np.flatnonzero(
            np.concatenate(([True], vs[1:] != vs[:-1]))
        ).tolist()
        starts.append(vs.shape[0])
        lines_list = vl.tolist()
        for k in range(len(starts) - 1):
            a, b = starts[k], starts[k + 1]
            sets[int(vs[a])] = dict.fromkeys(lines_list[a:b])
        self._stale = False

    def _snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current resident lines as the flat vector snapshot."""
        if self._vec is None:
            vlines: List[int] = []
            vsets: List[int] = []
            for s, resident in enumerate(self._sets):
                if resident:
                    vlines.extend(resident)
                    vsets.extend([s] * len(resident))
            self._vec = (
                np.asarray(vlines, dtype=np.int64),
                np.asarray(vsets, dtype=np.int64),
            )
        return self._vec

    def lines(self) -> List[List[int]]:
        """Per-set resident lines in LRU order (oldest first)."""
        if self._stale:
            self._materialize()
        return [list(ways) for ways in self._sets]

    def touch_line(self, line: int) -> bool:
        """Access one line; returns True on hit."""
        if self._stale:
            self._materialize()
        if self._vec is not None:
            self._vec = None
        ways = self._sets[line % self.config.sets]
        if line in ways:
            del ways[line]
            ways[line] = None
            self.hits += 1
            return True
        self.misses += 1
        ways[line] = None
        if len(ways) > self.config.ways:
            del ways[next(iter(ways))]
        return False

    def access(self, address: int, size_bytes: int) -> int:
        """Access a byte range; returns the number of line misses."""
        return self.access_stats(address, size_bytes)[1]

    def access_stats(self, address: int, size_bytes: int) -> Tuple[int, int]:
        """Access a byte range; returns ``(lines_touched, misses)``.

        Counting accesses in line units keeps per-array hit/miss
        accounting consistent: a wide access spanning two lines is two
        line accesses, so hits = accesses - misses never goes negative.
        """
        first = address // self.config.line_bytes
        last = (address + size_bytes - 1) // self.config.line_bytes
        misses = 0
        for line in range(first, last + 1):
            if not self.touch_line(line):
                misses += 1
        return last - first + 1, misses

    def replay_lines(
        self, lines: Union[Sequence[int], np.ndarray]
    ) -> np.ndarray:
        """Replay a chronological line-ID stream through the LRU state
        machine; returns a boolean hit mask, one entry per element.

        Equivalent to ``[self.touch_line(l) for l in lines]`` — same
        final cache state, same hit/miss totals — but amortizes the
        per-call overhead across the whole stream and takes a fast path
        for repeated-line streaks: a line that was touched by the
        immediately preceding access is already MRU, so the access is a
        hit and moving it to the back is a no-op.
        """
        seq = lines.tolist() if isinstance(lines, np.ndarray) else lines
        _check_stream(lines)
        if self._stale:
            self._materialize()
        if self._vec is not None:
            self._vec = None
        mask = []
        append = mask.append
        sets = self._sets
        nsets = self.config.sets
        capacity = self.config.ways
        hits = 0
        misses = 0
        prev = None
        for line in seq:
            if line == prev:
                hits += 1
                append(True)
                continue
            prev = line
            ways = sets[line % nsets]
            if line in ways:
                del ways[line]
                ways[line] = None
                hits += 1
                append(True)
            else:
                misses += 1
                ways[line] = None
                if len(ways) > capacity:
                    del ways[next(iter(ways))]
                append(False)
        self.hits += hits
        self.misses += misses
        return np.asarray(mask, dtype=bool)

    def replay_lines_bulk(
        self, lines: Union[Sequence[int], np.ndarray]
    ) -> np.ndarray:
        """Vectorized twin of :meth:`replay_lines`: same hit mask, same
        hit/miss totals, same final per-set LRU state — computed without
        a per-access Python loop.

        The algorithm is the classic stack-distance characterization of
        LRU. Sets are independent state machines, so the stream is
        stably partitioned by set (reordering accesses *across* sets
        commutes; within a set order is preserved). Each touched set's
        current residents are prepended as virtual accesses (oldest
        first) so pre-existing state participates exactly. An access is
        a hit iff the line was accessed before and the number of
        distinct lines accessed since its previous access is below the
        associativity. That distinct count comes from the identity

            distinct(i) = #{j < i : prev[j] <= prev[i]} - (prev[i] + 1)

        where ``prev`` is the previous-occurrence position (segment
        start - 1 for first occurrences): every j <= prev[i] satisfies
        ``prev[j] < j <= prev[i]`` unconditionally, and within the
        window ``(prev[i], i)`` — always inside one set segment —
        exactly the first-in-window occurrences qualify. The dominance
        count is computed by a bottom-up pairwise merge count
        (:func:`_rank_before`), O(n log^2 n) in NumPy ops. The final
        state of a touched set is its last ``ways`` distinct lines
        ordered by last access (the LRU inclusion property).
        """
        arr = _check_stream(lines)
        n_raw = arr.shape[0]
        if n_raw == 0:
            return np.zeros(0, dtype=bool)
        # Chronological run compaction before anything else: a repeat of
        # the immediately preceding line is the same set's MRU line — a
        # guaranteed hit that changes no state. Real streams are full of
        # such runs (a stride-1 touch stays on one 64-byte line for
        # eight iterations), so dropping them first shrinks every sort
        # and the O(n log^2 n) core by the run factor.
        keep_raw = np.empty(n_raw, dtype=bool)
        keep_raw[0] = True
        np.not_equal(arr[1:], arr[:-1], out=keep_raw[1:])
        arr = arr[keep_raw]
        n = arr.shape[0]
        nsets = self.config.sets
        capacity = self.config.ways
        set_ids = arr % nsets
        touched_flag = np.bincount(set_ids, minlength=nsets).astype(bool)
        svl, svs = self._snapshot()
        vmask = touched_flag[svs] if svs.size else svs.astype(bool)
        v_lines = svl[vmask]
        v_sets = svs[vmask]
        nv = v_lines.shape[0]
        if nv:
            all_lines = np.concatenate([v_lines, arr])
            all_sets = np.concatenate([v_sets, set_ids])
        else:
            all_lines = arr
            all_sets = set_ids
        m = n + nv
        # Stable partition by set: virtual entries (earlier in the
        # concatenation) stay ahead of the real stream of their set.
        order = np.argsort(all_sets, kind="stable")
        g_lines = all_lines[order]
        g_sets = all_sets[order]
        seg_new = np.empty(m, dtype=bool)
        seg_new[0] = True
        np.not_equal(g_sets[1:], g_sets[:-1], out=seg_new[1:])
        # Accesses to one line interleaved only with other sets' lines
        # become adjacent after partitioning — the later ones are hits
        # on an MRU line, compacted away like the chronological runs.
        dup = np.zeros(m, dtype=bool)
        np.equal(g_lines[1:], g_lines[:-1], out=dup[1:])
        dup[1:] &= ~seg_new[1:]
        keep = ~dup
        c_lines = g_lines[keep]
        c_sets = g_sets[keep]
        c_new = seg_new[keep]
        mc = c_lines.shape[0]
        seg_start = np.flatnonzero(c_new)
        seg_start_of = seg_start[np.cumsum(c_new) - 1]
        # Previous occurrence of the same line, in compacted positions.
        # Lines in different sets are never equal, so grouping by line
        # value alone stays within one segment.
        by_line = np.argsort(c_lines, kind="stable")
        sid = c_lines[by_line]
        prev = np.full(mc, -1, dtype=np.int64)
        if mc > 1:
            same = sid[1:] == sid[:-1]
            prev[by_line[1:][same]] = by_line[:-1][same]
        has_prev = prev >= 0
        pv = np.where(has_prev, prev, seg_start_of - 1)
        # Only positions with a previous occurrence can hit, so the
        # dominance count is needed only there. Split it: first
        # occurrences j contribute iff pv[j] = seg_start(j) - 1 <=
        # pv[i], which holds for *every* first occurrence before i
        # (earlier segments start earlier; same-segment firsts sit at
        # seg_start - 1 <= prev) — a running counter. Repeat
        # occurrences carry pairwise-distinct pv (each position is the
        # previous occurrence of at most one element), so their
        # contribution is a rank among the has-prev subset alone —
        # typically a small fraction of a streaming kernel's accesses.
        hit_c = np.zeros(mc, dtype=bool)
        idx_hp = np.flatnonzero(has_prev)
        if idx_hp.size:
            first_cum = np.cumsum(~has_prev)
            sub = pv[idx_hp]
            count_full = _rank_before(sub) + first_cum[idx_hp]
            hit_c[idx_hp] = count_full - (sub + 1) < capacity
        hit = np.empty(m, dtype=bool)
        hit[keep] = hit_c
        hit[dup] = True
        real = order >= nv
        result = np.ones(n_raw, dtype=bool)
        scatter = np.flatnonzero(keep_raw)
        result[scatter[order[real] - nv]] = hit[real]
        hits = int(np.count_nonzero(hit[real])) + (n_raw - n)
        self.hits += hits
        self.misses += n_raw - hits
        # Final state: per touched set, the last `capacity` distinct
        # lines ordered by last access, oldest first. Run-compaction
        # preserves both the distinct lines and the relative order of
        # their final accesses, so the compacted arrays suffice. The
        # new state replaces the touched sets' entries in the vector
        # snapshot; the per-set dicts are rebuilt lazily, so chained
        # bulk replays never pay a Python loop over sets.
        run_last = np.empty(mc, dtype=bool)
        run_last[-1] = True
        if mc > 1:
            np.not_equal(sid[1:], sid[:-1], out=run_last[:-1])
        last_pos = by_line[run_last]
        by_set = np.lexsort((last_pos, c_sets[last_pos]))
        uline = c_lines[last_pos][by_set]
        uset = c_sets[last_pos][by_set]
        starts = np.flatnonzero(
            np.concatenate(([True], uset[1:] != uset[:-1]))
        )
        ends = np.append(starts[1:], uset.shape[0])
        end_of = np.repeat(ends, ends - starts)
        keep_res = np.arange(uset.shape[0], dtype=np.int64) >= (
            end_of - capacity
        )
        self._vec = (
            np.concatenate([svl[~vmask], uline[keep_res]]),
            np.concatenate([svs[~vmask], uset[keep_res]]),
        )
        self._stale = True
        return result


def _check_stream(lines: Union[Sequence[int], np.ndarray]) -> np.ndarray:
    """Validate a replay stream: one-dimensional, integral line IDs.

    The bulk replay reorders accesses across sets, which is only sound
    for a flat chronological stream of whole-line IDs; anything else
    (a 2-D firsts/counts matrix passed unexpanded, float addresses not
    divided down to lines) indicates a caller bug and dies loudly with
    a structured error instead of corrupting LRU state.
    """
    arr = np.asarray(lines)
    if arr.ndim != 1:
        raise SimulationError(
            f"cache replay stream must be one-dimensional, got shape "
            f"{arr.shape}",
            rule="cache.replay-stream",
        )
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise SimulationError(
            f"cache replay stream must hold integer line IDs, got dtype "
            f"{arr.dtype}",
            rule="cache.replay-stream",
        )
    arr = arr.astype(np.int64, copy=False)
    if arr.size and int(arr.min()) < 0:
        raise SimulationError(
            f"cache replay stream holds negative line ID "
            f"{int(arr.min())} (underflowed base address?)",
            rule="cache.replay-stream",
        )
    return arr


def _rank_before(values: np.ndarray) -> np.ndarray:
    """``out[i] = #{j < i : values[j] <= values[i]}`` for an int64
    vector, by bottom-up pairwise merge counting: at each level, every
    pair of sibling width-``w`` blocks contributes the dominance counts
    of right-block elements over left-block elements via one sort and
    one offset-batched ``searchsorted``. Each (j, i) pair is counted at
    exactly one level — the first at which j and i share a 2w block —
    so the total is exact. O(n log^2 n) work, all in NumPy.
    """
    n = values.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    if n < 2:
        return counts
    # Base case: all pairs within blocks of _BASE_WIDTH at once, via a
    # blocked triangular comparison — collapses the first five merge
    # levels (whose per-level NumPy call overhead would dominate) into
    # three array ops over n * _BASE_WIDTH booleans.
    w0 = _BASE_WIDTH
    nb = n // w0
    if nb:
        blocks = values[: nb * w0].reshape(nb, w0)
        le = blocks[:, :, None] <= blocks[:, None, :]
        counts[: nb * w0] = (le & _BASE_MASK).sum(axis=1).ravel()
    tail = n - nb * w0
    if tail > 1:
        tb = values[nb * w0:]
        le = tb[:, None] <= tb[None, :]
        mask = np.triu(np.ones((tail, tail), dtype=bool), 1)
        counts[nb * w0:] = (le & mask).sum(axis=0)
    # Per-block offsets keep every block's values in disjoint ranges so
    # one flat searchsorted answers all block pairs at once. Values are
    # >= -1, so a spacing of max + 2 never lets ranges touch.
    base = np.int64(int(values.max()) + 2)
    width = w0
    while width < n:
        pair = 2 * width
        nblocks = n // pair
        cut = nblocks * pair
        if nblocks:
            blocks = values[:cut].reshape(nblocks, pair)
            offs = np.arange(nblocks, dtype=np.int64) * base
            left = np.sort(blocks[:, :width], axis=1) + offs[:, None]
            queries = (blocks[:, width:] + offs[:, None]).ravel()
            c = np.searchsorted(left.ravel(), queries, side="right")
            c -= np.repeat(
                np.arange(nblocks, dtype=np.int64) * width, width
            )
            idx = np.arange(cut, dtype=np.int64).reshape(nblocks, pair)[
                :, width:
            ].ravel()
            counts[idx] += c
        if n - cut > width:
            # Tail: one full left block and a partial right remainder.
            left_tail = np.sort(values[cut:cut + width])
            counts[cut + width:] += np.searchsorted(
                left_tail, values[cut + width:], side="right"
            )
        width = pair
    return counts


#: Block width of :func:`_rank_before`'s vectorized base case.
_BASE_WIDTH = 32
_BASE_MASK = np.triu(np.ones((_BASE_WIDTH, _BASE_WIDTH), dtype=bool), 1)
