"""A set-associative LRU data cache.

The machine models (Tables 1 and 2) give each platform its L1
parameters; the simulator routes every array-element access through this
cache so effects like the extra footprint of replicated arrays (Section
7.2: "data replication ... has a negative impact on the cache
behavior") show up in the measured cycle counts.

Each set is a dict used as an ordered set (insertion order == LRU
order, oldest first): a hit deletes and re-inserts the line to move it
to the MRU end, a fill past capacity evicts the first key. This is
O(1) per access where the previous list representation paid an
O(ways) scan plus an O(ways) ``list.remove`` shuffle.
"""

from __future__ import annotations

from ..errors import SimulationError
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int
    line_bytes: int
    ways: int
    miss_penalty: float  # extra cycles per miss (next-level latency)

    @property
    def sets(self) -> int:
        sets = self.size_bytes // (self.line_bytes * self.ways)
        if sets <= 0:
            raise SimulationError("cache too small for its associativity")
        return sets


class Cache:
    """LRU set-associative cache over byte addresses."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: List[dict] = [{} for _ in range(config.sets)]
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters; cache contents are untouched."""
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Drop every cached line; hit/miss counters are untouched."""
        self._sets = [{} for _ in range(self.config.sets)]

    def lines(self) -> List[List[int]]:
        """Per-set resident lines in LRU order (oldest first)."""
        return [list(ways) for ways in self._sets]

    def touch_line(self, line: int) -> bool:
        """Access one line; returns True on hit."""
        ways = self._sets[line % self.config.sets]
        if line in ways:
            del ways[line]
            ways[line] = None
            self.hits += 1
            return True
        self.misses += 1
        ways[line] = None
        if len(ways) > self.config.ways:
            del ways[next(iter(ways))]
        return False

    def access(self, address: int, size_bytes: int) -> int:
        """Access a byte range; returns the number of line misses."""
        return self.access_stats(address, size_bytes)[1]

    def access_stats(self, address: int, size_bytes: int) -> Tuple[int, int]:
        """Access a byte range; returns ``(lines_touched, misses)``.

        Counting accesses in line units keeps per-array hit/miss
        accounting consistent: a wide access spanning two lines is two
        line accesses, so hits = accesses - misses never goes negative.
        """
        first = address // self.config.line_bytes
        last = (address + size_bytes - 1) // self.config.line_bytes
        misses = 0
        for line in range(first, last + 1):
            if not self.touch_line(line):
                misses += 1
        return last - first + 1, misses

    def replay_lines(
        self, lines: Union[Sequence[int], np.ndarray]
    ) -> np.ndarray:
        """Replay a chronological line-ID stream through the LRU state
        machine; returns a boolean hit mask, one entry per element.

        Equivalent to ``[self.touch_line(l) for l in lines]`` — same
        final cache state, same hit/miss totals — but amortizes the
        per-call overhead across the whole stream and takes a fast path
        for repeated-line streaks: a line that was touched by the
        immediately preceding access is already MRU, so the access is a
        hit and moving it to the back is a no-op.
        """
        seq = lines.tolist() if isinstance(lines, np.ndarray) else lines
        mask = []
        append = mask.append
        sets = self._sets
        nsets = self.config.sets
        capacity = self.config.ways
        hits = 0
        misses = 0
        prev = None
        for line in seq:
            if line == prev:
                hits += 1
                append(True)
                continue
            prev = line
            ways = sets[line % nsets]
            if line in ways:
                del ways[line]
                ways[line] = None
                hits += 1
                append(True)
            else:
                misses += 1
                ways[line] = None
                if len(ways) > capacity:
                    del ways[next(iter(ways))]
                append(False)
        self.hits += hits
        self.misses += misses
        return np.asarray(mask, dtype=bool)
