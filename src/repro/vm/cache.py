"""A set-associative LRU data cache.

The machine models (Tables 1 and 2) give each platform its L1
parameters; the simulator routes every array-element access through this
cache so effects like the extra footprint of replicated arrays (Section
7.2: "data replication ... has a negative impact on the cache
behavior") show up in the measured cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int
    line_bytes: int
    ways: int
    miss_penalty: float  # extra cycles per miss (next-level latency)

    @property
    def sets(self) -> int:
        sets = self.size_bytes // (self.line_bytes * self.ways)
        if sets <= 0:
            raise ValueError("cache too small for its associativity")
        return sets


class Cache:
    """LRU set-associative cache over byte addresses."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: List[List[int]] = [[] for _ in range(config.sets)]
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.config.sets)]

    def touch_line(self, line: int) -> bool:
        """Access one line; returns True on hit."""
        index = line % self.config.sets
        ways = self._sets[index]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self.hits += 1
            return True
        self.misses += 1
        ways.append(line)
        if len(ways) > self.config.ways:
            ways.pop(0)
        return False

    def access(self, address: int, size_bytes: int) -> int:
        """Access a byte range; returns the number of line misses."""
        return self.access_stats(address, size_bytes)[1]

    def access_stats(self, address: int, size_bytes: int) -> Tuple[int, int]:
        """Access a byte range; returns ``(lines_touched, misses)``.

        Counting accesses in line units keeps per-array hit/miss
        accounting consistent: a wide access spanning two lines is two
        line accesses, so hits = accesses - misses never goes negative.
        """
        first = address // self.config.line_bytes
        last = (address + size_bytes - 1) // self.config.line_bytes
        misses = 0
        for line in range(first, last + 1):
            if not self.touch_line(line):
                misses += 1
        return last - first + 1, misses
