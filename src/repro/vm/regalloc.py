"""Vector register allocation — the "post-processing" of Figure 3.

The code generator produces an unbounded stream of virtual vector
registers; this pass maps them onto the machine's physical vector
register file (16 XMM registers on both evaluation machines) with a
linear-scan allocator over live ranges, inserting spill stores/reloads
when pressure exceeds the file. On the paper's workloads pressure stays
comfortably below 16, so spills are rare — but the allocator makes that
a *checked* property instead of an assumption, and the simulator charges
any spill traffic it does insert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .codegen import (
    CompiledCopy,
    CompiledLoop,
    CompiledStraight,
    CompiledUnit,
    ExecutablePlan,
)
from .isa import Instruction, ScalarExec, VOp, VPack, VShuffle, VStore


@dataclass(frozen=True)
class LiveRange:
    """One virtual register's definition and last use, as instruction
    indices within a single instruction list."""

    vreg: int
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass
class AllocationResult:
    """Outcome of allocating one instruction list."""

    assignment: Dict[int, int]          # vreg -> physical register
    spilled: Set[int] = field(default_factory=set)
    max_pressure: int = 0

    @property
    def spill_count(self) -> int:
        return len(self.spilled)


def _defs_and_uses(instr: Instruction) -> Tuple[Optional[int], Tuple[int, ...]]:
    if isinstance(instr, VPack):
        return instr.dst, ()
    if isinstance(instr, VOp):
        return instr.dst, instr.srcs
    if isinstance(instr, VShuffle):
        return instr.dst, (instr.src,)
    if isinstance(instr, VStore):
        return None, (instr.src,)
    assert isinstance(instr, ScalarExec)
    return None, ()


def live_ranges(
    instructions: Sequence[Instruction],
    live_out: Sequence[int] = (),
) -> List[LiveRange]:
    """Live ranges of every virtual register in one instruction list.

    ``live_out`` registers (e.g. preheader definitions consumed by the
    loop body) are treated as live to the end of the list.
    """
    first_def: Dict[int, int] = {}
    last_use: Dict[int, int] = {}
    for index, instr in enumerate(instructions):
        dst, srcs = _defs_and_uses(instr)
        if dst is not None and dst not in first_def:
            first_def[dst] = index
            last_use.setdefault(dst, index)
        for src in srcs:
            first_def.setdefault(src, 0)  # defined upstream (live-in)
            last_use[src] = index
    horizon = len(instructions)
    for vreg in live_out:
        if vreg in first_def:
            last_use[vreg] = horizon
    return sorted(
        (
            LiveRange(vreg, first_def[vreg], last_use.get(vreg, start))
            for vreg, start in first_def.items()
        ),
        key=lambda r: (r.start, r.vreg),
    )


def linear_scan(
    ranges: Sequence[LiveRange], physical_registers: int
) -> AllocationResult:
    """Classic linear-scan register allocation (Poletto & Sarkar).

    When no register is free at a range's start, the active range with
    the furthest end is spilled (its users reload around the spill).
    """
    result = AllocationResult({})
    free = list(range(physical_registers - 1, -1, -1))
    active: List[LiveRange] = []

    for current in ranges:
        # Expire ranges that ended before this one starts.
        still_active = []
        for rng in active:
            if rng.end < current.start:
                reg = result.assignment.get(rng.vreg)
                if reg is not None:
                    free.append(reg)
            else:
                still_active.append(rng)
        active = still_active

        if free:
            result.assignment[current.vreg] = free.pop()
            active.append(current)
        else:
            # Spill the active range ending furthest away (or the
            # current one, if it ends last).
            victim = max(active + [current], key=lambda r: (r.end, r.vreg))
            if victim is current:
                result.spilled.add(current.vreg)
            else:
                result.spilled.add(victim.vreg)
                reg = result.assignment.pop(victim.vreg)
                result.assignment[current.vreg] = reg
                active.remove(victim)
                active.append(current)
        result.max_pressure = max(result.max_pressure, len(active))
    return result


@dataclass
class PlanAllocation:
    """Register allocation over a whole executable plan."""

    per_unit: List[AllocationResult] = field(default_factory=list)

    @property
    def max_pressure(self) -> int:
        return max((r.max_pressure for r in self.per_unit), default=0)

    @property
    def total_spills(self) -> int:
        return sum(r.spill_count for r in self.per_unit)


def allocate_plan(
    plan: ExecutablePlan, physical_registers: Optional[int] = None
) -> PlanAllocation:
    """Allocate every vectorized instruction list of a plan.

    The preheader and body of a loop are allocated as one list (the
    preheader's definitions are live across all iterations, so they are
    marked live-out and effectively pinned).
    """
    allocation = PlanAllocation()

    def walk(unit: CompiledUnit, registers: int) -> None:
        if isinstance(unit, CompiledStraight):
            ranges = live_ranges(unit.instructions)
            allocation.per_unit.append(linear_scan(ranges, registers))
            return
        if isinstance(unit, CompiledCopy):
            return
        assert isinstance(unit, CompiledLoop)
        combined = list(unit.preheader) + list(unit.body)
        live_out = [
            dst
            for instr in unit.preheader
            for dst in [_defs_and_uses(instr)[0]]
            if dst is not None
        ]
        ranges = live_ranges(combined, live_out=live_out)
        allocation.per_unit.append(linear_scan(ranges, registers))
        if unit.inner is not None:
            walk(unit.inner, registers)

    for unit in plan.units:
        walk(unit, physical_registers or 16)
    return allocation
