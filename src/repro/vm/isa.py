"""The virtual vector ISA the code generator targets.

The instruction set mirrors what an SSE2-class backend would emit for
SLP code, at the granularity the paper's metrics need: wide loads and
stores for contiguous aligned superwords, per-lane insert/extract
sequences for everything else, register shuffles for reordered reuses,
and lane-parallel arithmetic. Scalar statements compile to one composite
:class:`ScalarExec` that still accounts loads/ops/stores individually.

Every instruction is *functionally executable* by the simulator (it
carries the value references it touches) and *costable* by a machine
model (it exposes its instruction-class breakdown).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple, Union

from ..ir import Affine, Statement


# -- value references ----------------------------------------------------------


@dataclass(frozen=True)
class ScalarRef:
    """A scalar variable (stack-arena resident for packing purposes)."""

    name: str


@dataclass(frozen=True)
class MemRef:
    """A flattened array element: ``array[flat(indices)]``."""

    array: str
    flat: Affine


@dataclass(frozen=True)
class ImmRef:
    """A literal constant lane."""

    value: float


ValueRef = Union[ScalarRef, MemRef, ImmRef]


# -- access modes ---------------------------------------------------------------


class PackMode(Enum):
    """How a source superword gets materialized into a vector register."""

    CONTIG_ALIGNED = "contig_aligned"      # one aligned wide load
    CONTIG_UNALIGNED = "contig_unaligned"  # one unaligned wide load
    GATHER = "gather"                      # per-lane element loads + inserts
    SCALAR_GATHER = "scalar_gather"        # per-lane scalar loads + inserts
    SCALAR_CONTIG = "scalar_contig"        # scalars contiguous in the arena
    BROADCAST = "broadcast"                # one element splat to all lanes
    IMMEDIATE = "immediate"                # constant vector materialization
    MIXED = "mixed"                        # heterogeneous lane sources


class StoreMode(Enum):
    """How a target superword is written back."""

    CONTIG_ALIGNED = "contig_aligned"
    CONTIG_UNALIGNED = "contig_unaligned"
    SCATTER = "scatter"                    # per-lane extracts + element stores
    SCALAR_SCATTER = "scalar_scatter"      # per-lane extracts + scalar stores
    SCALAR_CONTIG = "scalar_contig"        # scalars contiguous in the arena


# -- instructions -----------------------------------------------------------------


@dataclass(frozen=True)
class ScalarExec:
    """One scalar statement: loads, the op tree, one store.

    Kept composite so the simulator can evaluate the expression tree
    directly while the machine model still charges ``len(loads)`` loads,
    one ALU op per entry of ``ops`` and one store.
    """

    statement: Statement
    loads: Tuple[ValueRef, ...]
    ops: Tuple[str, ...]
    store: ValueRef
    #: Provenance ID of the compile-time decision that emitted this
    #: instruction (set only when tracing was on at compile time).
    #: Excluded from equality/hash so traced and untraced compiles of
    #: the same program produce interchangeable plans.
    prov: Optional[str] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class VPack:
    """Materialize an ordered superword into vector register ``dst``."""

    dst: int
    sources: Tuple[ValueRef, ...]
    mode: PackMode
    prov: Optional[str] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class VOp:
    """Lane-parallel arithmetic on vector registers."""

    op: str
    dst: int
    srcs: Tuple[int, ...]
    lanes: int
    prov: Optional[str] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class VShuffle:
    """Reorder lanes of ``src`` into ``dst``: ``dst[l] = src[perm[l]]``.

    This is the register permutation that turns an *indirect* superword
    reuse (same data, different order) into the needed order without
    touching memory — the saving Section 4.3 is after.
    """

    dst: int
    src: int
    perm: Tuple[int, ...]
    prov: Optional[str] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class VStore:
    """Write the lanes of vector register ``src`` to ``targets``."""

    targets: Tuple[ValueRef, ...]
    src: int
    mode: StoreMode
    prov: Optional[str] = field(default=None, compare=False, repr=False)


Instruction = Union[ScalarExec, VPack, VOp, VShuffle, VStore]
