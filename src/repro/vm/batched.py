"""Batched loop execution: vectorized simulation with report-identical
accounting.

The reference interpreter in :mod:`repro.vm.simulator` walks every loop
iteration instruction by instruction — isinstance dispatch, affine
evaluation against a dict env, and an LRU touch per array access. For
the paper's figures that interpreter *is* the wall clock: a fig16 point
simulates tens of thousands of dynamic instructions per kernel variant.

This engine decouples functional execution from timing replay, in the
spirit of trace-driven simulators: each ``CompiledLoop`` body is
pre-decoded **once** into a slot program —

* per-slot cycle charges as ``(category, unit_cost) -> count-per-trip``
  buckets, aggregated per slot × trip count instead of per instruction;
* closed-form affine address streams (``base + stride · i`` over the
  whole iteration range, via :func:`repro.vm.codegen.affine_stream`);
* lane values evaluated as whole-range NumPy columns with deferred
  writes and exact-affine store-to-load forwarding;
* one chronologically interleaved line-ID stream replayed in bulk
  through the LRU state machine (:meth:`repro.vm.cache.Cache.replay_lines`).

The result — ``ExecutionReport``, final ``Memory``, cache state — is
**exactly equal** to the reference interpreter's; the bucketed cycle
accounting in :mod:`repro.vm.report` is what makes the totals
bit-identical even for non-dyadic unit costs (AMD's 1.6-cycle lane
inserts), because both engines derive cycles from identical integer
buckets rather than differently-ordered float accumulation.

A loop is batched only when it is provably safe to evaluate columnwise:
no inner loop, no cross-iteration scalar or vector-register carries, no
cross-iteration array aliasing, and every reference affine in the loop
index (unbound symbols force the interpreter). Everything else falls
back per-unit to the reference path — correctness never depends on the
fast path applying.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ir import ArrayRef, Const, Expr, Var
from ..perf import count
from .codegen import CompiledLoop, affine_stream
from .isa import (
    Affine,
    ImmRef,
    Instruction,
    MemRef,
    PackMode,
    ScalarExec,
    ScalarRef,
    StoreMode,
    VOp,
    VPack,
    VShuffle,
    VStore,
)
from .report import MISS_CATEGORY, ProvenanceCost

_CONTIG_PACKS = (PackMode.CONTIG_ALIGNED, PackMode.CONTIG_UNALIGNED)
_CONTIG_STORES = (StoreMode.CONTIG_ALIGNED, StoreMode.CONTIG_UNALIGNED)

#: Vectorized twins of the interpreter's ``_OP_FUNCS``. ``+ - * /``,
#: ``neg``/``abs``/``sqrt`` are IEEE-correctly-rounded elementwise in
#: both NumPy and scalar Python, so columns match the interpreter bit
#: for bit. ``min``/``max`` are spelled with ``np.where`` to reproduce
#: Python's tie behavior (``min(a, b)`` returns ``a`` unless ``b < a``)
#: exactly, signed zeros included. ``/`` goes through ``np.divide`` so
#: scalar (Python float) columns get the same IEEE total semantics as
#: array columns and the interpreter's ``_ieee_div`` — x/0 is ±inf,
#: 0/0 is nan, never ZeroDivisionError.
_VEC_FUNCS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": np.divide,
    "min": lambda a, b: np.where(b < a, b, a),
    "max": lambda a, b: np.where(b > a, b, a),
    "neg": operator.neg,
    "abs": np.abs,
    "sqrt": np.sqrt,
    # Comparisons produce 1.0/0.0 float masks, matching the
    # interpreter's scalar ``1.0 if a < b else 0.0`` exactly (all state
    # is float64; the relations themselves are IEEE-exact).
    "<": lambda a, b: np.where(np.less(a, b), 1.0, 0.0),
    "<=": lambda a, b: np.where(np.less_equal(a, b), 1.0, 0.0),
    ">": lambda a, b: np.where(np.greater(a, b), 1.0, 0.0),
    ">=": lambda a, b: np.where(np.greater_equal(a, b), 1.0, 0.0),
    "==": lambda a, b: np.where(np.equal(a, b), 1.0, 0.0),
    "!=": lambda a, b: np.where(np.not_equal(a, b), 1.0, 0.0),
    # The blend: lanes with a non-zero mask take ``a``, others ``b`` —
    # identical to the interpreter's eager two-arm select.
    "select": lambda c, a, b: np.where(np.not_equal(c, 0.0), a, b),
}


def _col_last(col) -> float:
    """Final-iteration value of a column (scalar columns are loop
    invariant, so the last value is the value)."""
    if isinstance(col, np.ndarray) and col.ndim:
        return float(col[-1])
    return float(col)


@dataclass
class _Touch:
    """One cache access per iteration: a byte range at an affine flat."""

    slot: int
    array: str
    flat: Affine
    size_bytes: int


@dataclass
class _Slot:
    """One decoded body instruction."""

    instr: Instruction
    prov: Optional[str]
    #: Per-iteration cycle charges, (category, unit_cost) -> count.
    charges: Dict[Tuple[str, float], int] = field(default_factory=dict)
    #: Provenance sink for the current entry (set by ``_account``).
    sink: Optional[ProvenanceCost] = None

    def charge(self, category: str, unit_cycles: float, n: int = 1) -> None:
        key = (category, unit_cycles)
        self.charges[key] = self.charges.get(key, 0) + n


@dataclass
class _LoopProgram:
    """A ``CompiledLoop`` body decoded for batched execution."""

    slots: List[_Slot]
    touches: List[_Touch]
    #: Every distinct flat affine referenced (touches + value reads +
    #: store targets); all must resolve to (base, stride) at entry.
    flats: List[Affine]


class BatchedEngine:
    """Per-run batched executor; owned by one ``_RunState``."""

    def __init__(self, state):
        self.state = state
        self.machine = state.machine
        self.memory = state.memory
        self.report = state.report
        self.cache = state.cache
        #: Decode memo, keyed by unit identity (units are alive for the
        #: whole run, so ids are stable). ``None`` records "not
        #: batchable" so inner loops of a reference-driven nest do not
        #: re-run the safety analysis on every outer iteration.
        self._decoded: Dict[int, Optional[_LoopProgram]] = {}
        self.batched_loops = 0
        self.fallback_loops = 0

    # -- entry point -----------------------------------------------------------------

    def run_loop(self, unit: CompiledLoop, env: Dict[str, int]) -> bool:
        """Execute one loop entry in batch mode. Returns False (having
        changed nothing) when the unit must fall back to the
        interpreter."""
        key = id(unit)
        program = self._decoded.get(key, False)
        if program is False:
            program = _decode_loop(unit, self.machine, self.memory)
            self._decoded[key] = program
        if program is None:
            self.fallback_loops += 1
            count("simulate.batched_fallbacks")
            return False
        spec = unit.spec
        trips = spec.trip_count
        if trips == 0:
            env.pop(spec.index, None)
            return True
        # Entry-dependent check: every affine must be closed-form in
        # the loop index given the enclosing bindings.
        streams: Dict[Affine, Tuple[int, int]] = {}
        for flat in program.flats:
            stream = affine_stream(flat, spec.index, env)
            if stream is None:
                self.fallback_loops += 1
                count("simulate.batched_fallbacks")
                return False
            streams[flat] = stream
        ivals = np.arange(spec.start, spec.stop, spec.step, dtype=np.int64)
        entry = _Entry(self, program, trips, ivals, streams)
        entry.evaluate()
        # _account resolves each slot's provenance sink for this entry,
        # which _replay's per-touch miss attribution relies on.
        self._account(program, trips)
        self._replay(program, trips, ivals, streams)
        entry.apply()
        env.pop(spec.index, None)
        self.batched_loops += 1
        count("simulate.batched_loops")
        return True

    def run_copy(self, unit) -> bool:
        """Batched layout-replication copy: per-lane affine source
        streams, one vectorized copy per lane, and one bulk replay of
        the interleaved src/dst access stream — the same chronological
        order (element-major, source before destination) the
        interpreter's ``run_copy`` issues, so cache state, miss count,
        and the amortized cycle charge are identical."""
        rep = unit.replication
        loop = rep.loop
        trips = loop.trip_count
        lanes = rep.lanes
        streams = [
            affine_stream(flat, loop.index, {}) for flat in rep.lane_flats
        ]
        if any(stream is None for stream in streams):
            return False
        memory = self.memory
        src = memory.arrays[rep.source]
        dst = memory.arrays[rep.new_name]
        src_addr_base = memory._base[rep.source]
        dst_addr_base = memory._base[rep.new_name]
        src_bytes = memory._elem_bytes[rep.source]
        dst_bytes = memory._elem_bytes[rep.new_name]
        line_bytes = self.cache.config.line_bytes
        ivals = np.arange(loop.start, loop.stop, loop.step, dtype=np.int64)
        jvals = np.arange(trips, dtype=np.int64)
        m = 2 * lanes
        firsts = np.empty((trips, m), dtype=np.int64)
        counts = np.empty((trips, m), dtype=np.int64)
        for k, (base, stride) in enumerate(streams):
            src_idx = base + stride * ivals
            dst_idx = lanes * jvals + k
            dst[dst_idx] = src[src_idx]
            for col, addr, nbytes in (
                (2 * k, src_addr_base + src_idx * src_bytes, src_bytes),
                (2 * k + 1, dst_addr_base + dst_idx * dst_bytes, dst_bytes),
            ):
                first = addr // line_bytes
                firsts[:, col] = first
                counts[:, col] = (
                    (addr + (nbytes - 1)) // line_bytes - first + 1
                )
        flat_firsts = firsts.ravel()
        flat_counts = counts.ravel()
        total = int(flat_counts.sum())
        ends = np.cumsum(flat_counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            ends - flat_counts, flat_counts
        )
        lines = np.repeat(flat_firsts, flat_counts) + offsets
        misses = int((~self._replay_stream(lines)).sum())
        machine = self.machine
        per_element = machine.scalar_load + machine.scalar_store
        amortized = (
            rep.elements * per_element
            + misses * machine.l1.miss_penalty
        ) / unit.amortization
        self.report.bump("layout_copy_element", rep.elements)
        self.report.add_extra_cycles(amortized)
        return True

    # -- timing replay ---------------------------------------------------------------

    def _replay_stream(self, lines: np.ndarray) -> np.ndarray:
        """Run a chronological line stream through the LRU machine;
        subclass hook (the compiled engine substitutes the vectorized
        bulk replay, which is state- and result-identical)."""
        return self.cache.replay_lines(lines)

    def _build_line_stream(
        self,
        program: _LoopProgram,
        trips: int,
        ivals: np.ndarray,
        streams: Dict[Affine, Tuple[int, int]],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The whole loop's chronological line-ID stream — iteration-
        major, then slot order, then line order within one access —
        plus per-element touch attribution and per-touch line totals."""
        touches = program.touches
        m = len(touches)
        memory = self.memory
        line_bytes = self.cache.config.line_bytes
        firsts = np.empty((trips, m), dtype=np.int64)
        counts = np.empty((trips, m), dtype=np.int64)
        for j, touch in enumerate(touches):
            base, stride = streams[touch.flat]
            addresses = (
                memory._base[touch.array]
                + (base + stride * ivals) * memory._elem_bytes[touch.array]
            )
            first = addresses // line_bytes
            firsts[:, j] = first
            counts[:, j] = (
                (addresses + (touch.size_bytes - 1)) // line_bytes - first + 1
            )
        flat_firsts = firsts.ravel()
        flat_counts = counts.ravel()
        total = int(flat_counts.sum())
        # Expand each (first, count) range into consecutive line IDs.
        ends = np.cumsum(flat_counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            ends - flat_counts, flat_counts
        )
        lines = np.repeat(flat_firsts, flat_counts) + offsets
        touch_ids = np.repeat(
            np.tile(np.arange(m, dtype=np.int64), trips), flat_counts
        )
        return lines, touch_ids, counts.sum(axis=0)

    def _replay(
        self,
        program: _LoopProgram,
        trips: int,
        ivals: np.ndarray,
        streams: Dict[Affine, Tuple[int, int]],
    ) -> None:
        """Replay every cache access of the whole loop, in the exact
        chronological order the interpreter would issue them, through
        the LRU state machine, attributing misses per touch."""
        m = len(program.touches)
        if m == 0:
            return
        lines, touch_ids, lines_per_touch = self._build_line_stream(
            program, trips, ivals, streams
        )
        self._attribute_replay(program, lines, touch_ids, lines_per_touch)

    def _attribute_replay(
        self,
        program: _LoopProgram,
        lines: np.ndarray,
        touch_ids: np.ndarray,
        lines_per_touch: np.ndarray,
    ) -> None:
        touches = program.touches
        m = len(touches)
        hit_mask = self._replay_stream(lines)
        misses_per_touch = np.bincount(
            touch_ids[~hit_mask], minlength=m
        )

        report = self.report
        penalty = self.machine.l1.miss_penalty
        miss_key = (MISS_CATEGORY, penalty)
        slots = program.slots
        for j, touch in enumerate(touches):
            report.array_accesses[touch.array] = report.array_accesses.get(
                touch.array, 0
            ) + int(lines_per_touch[j])
            misses = int(misses_per_touch[j])
            if not misses:
                continue
            report.array_misses[touch.array] = (
                report.array_misses.get(touch.array, 0) + misses
            )
            report.charges[miss_key] = (
                report.charges.get(miss_key, 0) + misses
            )
            sink = slots[touch.slot].sink
            if sink is not None:
                sink.charges[miss_key] = (
                    sink.charges.get(miss_key, 0) + misses
                )
                sink.cache_misses += misses

    # -- cycle / instruction accounting ----------------------------------------------

    def _account(self, program: _LoopProgram, trips: int) -> None:
        """Aggregate per-slot charges × trip count. ``_Slot.sink`` is
        (re)resolved here per entry so zero-trip loops never materialize
        provenance entries, matching the interpreter."""
        report = self.report
        provenance = report.provenance
        for slot in program.slots:
            sink = None
            if slot.prov is not None:
                sink = provenance.get(slot.prov)
                if sink is None:
                    sink = provenance[slot.prov] = ProvenanceCost()
                sink.instructions += trips
                if isinstance(slot.instr, VShuffle):
                    sink.shuffles += trips
            slot.sink = sink
            for key, per_trip in slot.charges.items():
                total = per_trip * trips
                report.counts[key[0]] = report.counts.get(key[0], 0) + total
                report.charges[key] = report.charges.get(key, 0) + total
                if sink is not None:
                    sink.charges[key] = sink.charges.get(key, 0) + total


class _Entry:
    """Functional (value) execution of one batched loop entry.

    Values flow as whole-iteration-range columns. Array writes are
    deferred: reads come either from the store-forwarding map (exact
    affine match — the only aliasing the safety analysis admits) or
    from loop-entry memory, then all writes land in body order at the
    end. Nothing outside this object mutates until :meth:`apply`.
    """

    def __init__(
        self,
        engine: BatchedEngine,
        program: _LoopProgram,
        trips: int,
        ivals: np.ndarray,
        streams: Dict[Affine, Tuple[int, int]],
    ):
        self.engine = engine
        self.program = program
        self.trips = trips
        self.ivals = ivals
        self.streams = streams
        self.scalar_cols: Dict[str, object] = {}
        self.mem_cols: Dict[Tuple[str, Affine], object] = {}
        self.gathers: Dict[Tuple[str, Affine], object] = {}
        self.vreg_cols: Dict[int, List[object]] = {}
        self.writes: List[Tuple[str, Affine, object]] = []

    # -- column sources --------------------------------------------------------------

    def read_scalar(self, name: str):
        col = self.scalar_cols.get(name)
        if col is None:
            return self.engine.memory.scalars[name]
        return col

    def read_mem(self, array: str, flat: Affine):
        key = (array, flat)
        col = self.mem_cols.get(key)
        if col is not None:
            return col
        col = self.gathers.get(key)
        if col is None:
            base, stride = self.streams[flat]
            data = self.engine.memory.arrays[array]
            if stride == 0:
                col = float(data[base])
            else:
                col = data[base + stride * self.ivals]
            self.gathers[key] = col
        return col

    def read_source(self, ref):
        if isinstance(ref, ImmRef):
            return float(ref.value)
        if isinstance(ref, ScalarRef):
            return self.read_scalar(ref.name)
        return self.read_mem(ref.array, ref.flat)

    def read_vreg(self, vreg: int) -> List[object]:
        cols = self.vreg_cols.get(vreg)
        if cols is None:
            cols = [float(v) for v in self.engine.state.vregs[vreg]]
            self.vreg_cols[vreg] = cols
        return cols

    def eval_expr(self, expr: Expr):
        if isinstance(expr, Const):
            return float(expr.value)
        if isinstance(expr, Var):
            return self.read_scalar(expr.name)
        if isinstance(expr, ArrayRef):
            decl = self.engine.memory.program.arrays[expr.array]
            flat = Affine((), 0)
            for subscript, dim in zip(expr.subscripts, decl.shape):
                flat = flat * dim + subscript
            return self.read_mem(expr.array, flat)
        kids = expr.children()
        values = [self.eval_expr(k) for k in kids]
        return _VEC_FUNCS[getattr(expr, "op")](*values)

    # -- body walk -------------------------------------------------------------------

    def evaluate(self) -> None:
        for slot in self.program.slots:
            instr = slot.instr
            if isinstance(instr, ScalarExec):
                value = self.eval_expr(instr.statement.expr)
                self.write_ref(instr.store, value)
            elif isinstance(instr, VPack):
                self.vreg_cols[instr.dst] = [
                    self.read_source(src) for src in instr.sources
                ]
            elif isinstance(instr, VOp):
                fn = _VEC_FUNCS[instr.op]
                operands = [self.read_vreg(s) for s in instr.srcs]
                self.vreg_cols[instr.dst] = [
                    fn(*[cols[lane] for cols in operands])
                    for lane in range(instr.lanes)
                ]
            elif isinstance(instr, VShuffle):
                src = self.read_vreg(instr.src)
                self.vreg_cols[instr.dst] = [src[i] for i in instr.perm]
            else:
                assert isinstance(instr, VStore)
                cols = self.read_vreg(instr.src)
                for target, col in zip(instr.targets, cols):
                    self.write_ref(target, col)

    def write_ref(self, ref, col) -> None:
        if isinstance(ref, ScalarRef):
            self.scalar_cols[ref.name] = col
            return
        self.mem_cols[(ref.array, ref.flat)] = col
        self.writes.append((ref.array, ref.flat, col))

    # -- state commit ----------------------------------------------------------------

    def apply(self) -> None:
        """Land deferred writes in body order, then scalar and vector
        register finals — exactly the state the interpreter leaves."""
        memory = self.engine.memory
        for array, flat, col in self.writes:
            base, stride = self.streams[flat]
            data = memory.arrays[array]
            if stride == 0:
                data[base] = _col_last(col)
            else:
                data[base + stride * self.ivals] = col
        for name, col in self.scalar_cols.items():
            memory.scalars[name] = _col_last(col)
        vregs = self.engine.state.vregs
        for vreg, cols in self.vreg_cols.items():
            vregs[vreg] = tuple(_col_last(col) for col in cols)


# -- decode: body -> slot program, or None on any unsafe shape -------------------------


def _decode_loop(
    unit: CompiledLoop, machine, memory
) -> Optional[_LoopProgram]:
    if unit.inner is not None or unit.spec.step <= 0:
        return None
    slots: List[_Slot] = []
    touches: List[_Touch] = []
    flats: Dict[Affine, None] = {}
    scalar_reads: List[Tuple[int, str]] = []
    scalar_writes: List[Tuple[int, str]] = []
    array_refs: Dict[str, List[Tuple[int, Affine, bool]]] = {}
    vreg_reads: List[Tuple[int, int]] = []
    vreg_defs: List[Tuple[int, int]] = []

    def note_array(pos: int, array: str, flat: Affine, is_write: bool) -> None:
        flats[flat] = None
        array_refs.setdefault(array, []).append((pos, flat, is_write))

    def elem(array: str) -> int:
        return memory._elem_bytes[array]

    ctx = _DecodeCtx(
        machine, elem, touches, note_array, scalar_reads, scalar_writes,
        memory.program.arrays,
    )
    for pos, instr in enumerate(unit.body):
        slot = _Slot(instr, getattr(instr, "prov", None))
        if isinstance(instr, ScalarExec):
            ok = _decode_scalar(instr, pos, slot, ctx)
        elif isinstance(instr, VPack):
            ok = _decode_pack(instr, pos, slot, ctx)
            vreg_defs.append((pos, instr.dst))
        elif isinstance(instr, VOp):
            slot.charge("vector_op", machine.op_cost(instr.op))
            for src in instr.srcs:
                vreg_reads.append((pos, src))
            vreg_defs.append((pos, instr.dst))
            ok = True
        elif isinstance(instr, VShuffle):
            slot.charge("shuffle", machine.shuffle)
            vreg_reads.append((pos, instr.src))
            vreg_defs.append((pos, instr.dst))
            ok = True
        elif isinstance(instr, VStore):
            ok = _decode_store(instr, pos, slot, ctx)
            vreg_reads.append((pos, instr.src))
        else:
            ok = False
        if not ok:
            return None
        slots.append(slot)

    if not _carries_safe(
        unit.spec, scalar_reads, scalar_writes, vreg_reads, vreg_defs,
        array_refs,
    ):
        return None
    return _LoopProgram(slots, touches, list(flats))


class _DecodeCtx:
    """Shared decode-time plumbing for the per-kind decoders."""

    def __init__(
        self, machine, elem, touches, note_array, scalar_reads,
        scalar_writes, arrays,
    ):
        self.machine = machine
        self.elem = elem
        self.touches = touches
        self.note_array = note_array
        self.scalar_reads = scalar_reads
        self.scalar_writes = scalar_writes
        self.arrays = arrays


def _note_expr_reads(expr: Expr, pos: int, ctx: _DecodeCtx) -> None:
    """Record the *value* reads of a scalar expression — the loads the
    functional evaluation will perform (``instr.loads`` covers the
    accounting side; the Horner flats here are what ``_Entry.eval_expr``
    resolves, so they must reach the stream table too)."""
    if isinstance(expr, Const):
        return
    if isinstance(expr, Var):
        ctx.scalar_reads.append((pos, expr.name))
        return
    if isinstance(expr, ArrayRef):
        decl = ctx.arrays[expr.array]
        flat = Affine((), 0)
        for subscript, dim in zip(expr.subscripts, decl.shape):
            flat = flat * dim + subscript
        ctx.note_array(pos, expr.array, flat, False)
        return
    for kid in expr.children():
        _note_expr_reads(kid, pos, ctx)


def _decode_scalar(
    instr: ScalarExec, pos: int, slot: _Slot, ctx: _DecodeCtx
) -> bool:
    machine = ctx.machine
    for load in instr.loads:
        if isinstance(load, MemRef):
            ctx.touches.append(
                _Touch(pos, load.array, load.flat, ctx.elem(load.array))
            )
            ctx.note_array(pos, load.array, load.flat, False)
            slot.charge("scalar_load", machine.scalar_load)
        else:
            slot.charge("scalar_move", machine.scalar_move)
    for op in instr.ops:
        slot.charge("scalar_op", machine.op_cost(op))
    _note_expr_reads(instr.statement.expr, pos, ctx)
    store = instr.store
    if isinstance(store, MemRef):
        ctx.touches.append(
            _Touch(pos, store.array, store.flat, ctx.elem(store.array))
        )
        ctx.note_array(pos, store.array, store.flat, True)
        slot.charge("scalar_store", machine.scalar_store)
    else:
        slot.charge("scalar_move", machine.scalar_move)
        ctx.scalar_writes.append((pos, store.name))
    return True


def _decode_pack(
    instr: VPack, pos: int, slot: _Slot, ctx: _DecodeCtx
) -> bool:
    machine = ctx.machine
    mode = instr.mode
    if mode in _CONTIG_PACKS:
        first = instr.sources[0]
        if not isinstance(first, MemRef):
            return False
        width = len(instr.sources) * ctx.elem(first.array)
        ctx.touches.append(_Touch(pos, first.array, first.flat, width))
        cost = machine.vector_load
        if mode is PackMode.CONTIG_UNALIGNED:
            cost += machine.unaligned_extra
        slot.charge("vector_load", cost)
    elif mode is PackMode.SCALAR_CONTIG:
        slot.charge("vector_load", machine.vector_load)
    elif mode is PackMode.IMMEDIATE:
        slot.charge("imm_vector", machine.imm_vector)
    elif mode is PackMode.BROADCAST:
        first = instr.sources[0]
        if isinstance(first, MemRef):
            ctx.touches.append(
                _Touch(pos, first.array, first.flat, ctx.elem(first.array))
            )
            slot.charge("pack_mem_load", machine.scalar_load)
        elif isinstance(first, ScalarRef):
            slot.charge("pack_scalar_move", machine.scalar_move)
        slot.charge("broadcast", machine.broadcast)
    else:  # GATHER / SCALAR_GATHER / MIXED
        for source in instr.sources:
            if isinstance(source, MemRef):
                ctx.touches.append(
                    _Touch(
                        pos, source.array, source.flat, ctx.elem(source.array)
                    )
                )
                slot.charge("pack_mem_load", machine.scalar_load)
            elif isinstance(source, ScalarRef):
                slot.charge("pack_scalar_move", machine.scalar_move)
            slot.charge("lane_insert", machine.lane_insert)
    # Every lane is *read* for its value regardless of mode.
    for source in instr.sources:
        if isinstance(source, MemRef):
            ctx.note_array(pos, source.array, source.flat, False)
        elif isinstance(source, ScalarRef):
            ctx.scalar_reads.append((pos, source.name))
    return True


def _decode_store(
    instr: VStore, pos: int, slot: _Slot, ctx: _DecodeCtx
) -> bool:
    machine = ctx.machine
    mode = instr.mode
    if mode in _CONTIG_STORES:
        first = instr.targets[0]
        if not isinstance(first, MemRef):
            return False
        width = len(instr.targets) * ctx.elem(first.array)
        ctx.touches.append(_Touch(pos, first.array, first.flat, width))
        cost = machine.vector_store
        if mode is StoreMode.CONTIG_UNALIGNED:
            cost += machine.unaligned_extra
        slot.charge("vector_store", cost)
    elif mode is StoreMode.SCALAR_CONTIG:
        slot.charge("vector_store", machine.vector_store)
    else:  # SCATTER / SCALAR_SCATTER
        for target in instr.targets:
            slot.charge("lane_extract", machine.lane_extract)
            if isinstance(target, MemRef):
                ctx.touches.append(
                    _Touch(
                        pos, target.array, target.flat, ctx.elem(target.array)
                    )
                )
                slot.charge("unpack_mem_store", machine.scalar_store)
            else:
                slot.charge("unpack_scalar_move", machine.scalar_move)
    # Every lane is *written* regardless of mode.
    for target in instr.targets:
        if isinstance(target, MemRef):
            ctx.note_array(pos, target.array, target.flat, True)
        elif isinstance(target, ScalarRef):
            ctx.scalar_writes.append((pos, target.name))
        else:
            return False
    return True


def _carries_safe(
    spec,
    scalar_reads: List[Tuple[int, str]],
    scalar_writes: List[Tuple[int, str]],
    vreg_reads: List[Tuple[int, int]],
    vreg_defs: List[Tuple[int, int]],
    array_refs: Dict[str, List[Tuple[int, Affine, bool]]],
) -> bool:
    """Prove the body free of cross-iteration carries.

    Scalars: a scalar that is written in the body and read at a
    position not strictly after its first write carries the previous
    iteration's value (reductions like ``s = s + A[i]``) — unsafe.

    Vector registers: a register read before the body defines it, but
    defined somewhere in the body, likewise carries — unsafe.

    Arrays: every (write, other-ref) pair to one array must either be
    the *same* affine stream (handled in body order by store
    forwarding; stride 0 additionally requires the read to come after
    the first write) or provably never collide across the iteration
    space: equal loop-index coefficient ``a`` and equal outer-variable
    coefficients make the address gap a compile-time constant δ, and a
    collision exists iff ``a != 0`` and ``δ / a`` is a nonzero multiple
    of ``step`` within ``(trips - 1) · step``. Any pair this analysis
    cannot prove disjoint is unsafe.
    """
    index = spec.index
    trips = spec.trip_count
    step = spec.step

    written_scalars = {name for _, name in scalar_writes}
    if written_scalars:
        first_write: Dict[str, int] = {}
        for pos, name in scalar_writes:
            if name not in first_write or pos < first_write[name]:
                first_write[name] = pos
        for pos, name in scalar_reads:
            if name in written_scalars and pos <= first_write[name]:
                return False

    defined_vregs = {vreg for _, vreg in vreg_defs}
    first_def: Dict[int, int] = {}
    for pos, vreg in vreg_defs:
        if vreg not in first_def or pos < first_def[vreg]:
            first_def[vreg] = pos
    for pos, vreg in vreg_reads:
        # Reading a register the body defines, at or before its first
        # definition (source operands are read before the destination
        # is written), means iteration t observes iteration t-1's
        # value: a carry.
        if vreg in defined_vregs and pos <= first_def[vreg]:
            return False

    span = (trips - 1) * step
    for refs in array_refs.values():
        writes = [(pos, flat) for pos, flat, is_write in refs if is_write]
        if not writes:
            continue
        for wpos, wflat in writes:
            a = wflat.coeff(index)
            rest_w = wflat + Affine.var(index, -a) if a else wflat
            for xpos, xflat, x_is_write in refs:
                ax = xflat.coeff(index)
                if ax != a:
                    return False
                rest_x = xflat + Affine.var(index, -ax) if ax else xflat
                if rest_x.coeffs != rest_w.coeffs:
                    return False
                delta = rest_x.const - rest_w.const
                if delta == 0:
                    if a == 0 and not x_is_write and xpos <= wpos:
                        # Constant-address read at-or-before a write to
                        # the same cell: iteration carry.
                        return False
                    continue
                if a == 0:
                    continue  # distinct constant addresses never meet
                if delta % a:
                    continue
                q = delta // a
                if q % step == 0 and q != 0 and abs(q) <= span:
                    return False
    return True
