"""Execution reports: dynamic instruction mix and cycle accounting.

The categories are chosen so the paper's metrics fall out directly:

* Figure 17 reports "dynamic instructions (excluding the
  packing/unpacking instructions)" and "packing/unpacking overheads" —
  :meth:`ExecutionReport.dynamic_instructions` and
  :meth:`ExecutionReport.pack_unpack_ops`.
* Figures 16/19/20/21 report execution-time reductions —
  :attr:`ExecutionReport.cycles`.

Cycle accounting is *bucketed*: every charge lands in an integer
counter keyed by ``(category, unit_cost)`` and ``cycles`` is derived by
summing ``count * unit_cost`` over the buckets in sorted key order.
This makes the total independent of the order charges arrive in, which
is what lets the batched execution engine (``repro.vm.batched``) —
which aggregates whole loops per slot × trip-count instead of walking
iterations — produce *bit-identical* cycle totals to the reference
interpreter even for machines whose unit costs are not exactly
representable sums (e.g. the AMD model's 1.6-cycle lane inserts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Bucket category used for L1 miss penalties. It never appears in
#: ``counts`` — misses are reported via ``cache_misses`` — but its
#: bucket participates in the cycle total.
MISS_CATEGORY = "l1_miss"


def _bucket_cycles(
    charges: Dict[Tuple[str, float], int], extra: float = 0.0
) -> float:
    total = extra
    for key in sorted(charges):
        total += charges[key] * key[1]
    return total


@dataclass
class ProvenanceCost:
    """Runtime cost accumulated against one compile-time decision.

    Keys are provenance IDs stamped on instructions by codegen (see
    ``repro.trace.provenance_id``); the simulator fills one of these per
    distinct ID it executes instructions for. Cycles use the same
    bucketed accounting as :class:`ExecutionReport`, so per-decision
    totals agree exactly between execution engines.
    """

    instructions: int = 0
    shuffles: int = 0
    cache_misses: int = 0
    charges: Dict[Tuple[str, float], int] = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        return _bucket_cycles(self.charges)

    def charge(self, category: str, count: int, unit_cycles: float) -> None:
        key = (category, unit_cycles)
        self.charges[key] = self.charges.get(key, 0) + count

    def add(self, other: "ProvenanceCost") -> None:
        self.instructions += other.instructions
        self.shuffles += other.shuffles
        self.cache_misses += other.cache_misses
        for key, count in other.charges.items():
            self.charges[key] = self.charges.get(key, 0) + count

#: Instruction categories that exist only to assemble or disassemble
#: superwords. A contiguous aligned wide load/store is *not* overhead —
#: it is the natural memory access SLP replaces several scalar accesses
#: with; the overhead is the per-lane traffic, inserts/extracts,
#: shuffles and vector-constant materialization.
PACK_UNPACK_CATEGORIES = frozenset(
    {
        "lane_insert",
        "lane_extract",
        "shuffle",
        "broadcast",
        "imm_vector",
        "pack_mem_load",
        "unpack_mem_store",
        "pack_scalar_move",
        "unpack_scalar_move",
    }
)


@dataclass
class ExecutionReport:
    """Aggregated observations from one simulated execution."""

    counts: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    max_live_vregs: int = 0
    #: Per-decision runtime attribution, keyed by provenance ID. Only
    #: populated when the executed plan carries provenance tags (i.e.
    #: tracing was enabled when it was compiled).
    provenance: Dict[str, ProvenanceCost] = field(default_factory=dict)
    #: Per-array cache traffic, in line-access units.
    array_accesses: Dict[str, int] = field(default_factory=dict)
    array_misses: Dict[str, int] = field(default_factory=dict)
    #: Integer charge buckets keyed by ``(category, unit_cost)``; the
    #: source of truth for :attr:`cycles`.
    charges: Dict[Tuple[str, float], int] = field(default_factory=dict)
    #: Cycles with no per-event unit cost (amortized layout copies).
    #: Both engines accumulate these through the identical sequential
    #: code path, so float identity is preserved without bucketing.
    extra_cycles: float = 0.0
    #: When set, every charge is mirrored into this ProvenanceCost. The
    #: interpreter points it at the active instruction's provenance sink
    #: around dispatch; it is transient bookkeeping, not a result.
    sink: Optional[ProvenanceCost] = field(
        default=None, repr=False, compare=False
    )

    @property
    def cycles(self) -> float:
        return _bucket_cycles(self.charges, self.extra_cycles)

    def bump(self, category: str, count: int = 1) -> None:
        self.counts[category] = self.counts.get(category, 0) + count

    def charge(self, category: str, count: int, unit_cycles: float) -> None:
        self.counts[category] = self.counts.get(category, 0) + count
        key = (category, unit_cycles)
        self.charges[key] = self.charges.get(key, 0) + count
        sink = self.sink
        if sink is not None:
            sink.charges[key] = sink.charges.get(key, 0) + count

    def charge_miss(self, misses: int, penalty: float) -> None:
        """Charge L1 miss penalties without touching ``counts`` (misses
        are already reported through ``cache_misses``)."""
        key = (MISS_CATEGORY, penalty)
        self.charges[key] = self.charges.get(key, 0) + misses
        sink = self.sink
        if sink is not None:
            sink.charges[key] = sink.charges.get(key, 0) + misses
            sink.cache_misses += misses

    def add_extra_cycles(self, cycles: float) -> None:
        self.extra_cycles += cycles

    def merge(self, other: "ExecutionReport") -> None:
        for category, count in other.counts.items():
            self.bump(category, count)
        for key, count in other.charges.items():
            self.charges[key] = self.charges.get(key, 0) + count
        self.extra_cycles += other.extra_cycles
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.max_live_vregs = max(self.max_live_vregs, other.max_live_vregs)
        for prov, cost in other.provenance.items():
            mine = self.provenance.get(prov)
            if mine is None:
                mine = self.provenance[prov] = ProvenanceCost()
            mine.add(cost)
        for array, count in other.array_accesses.items():
            self.array_accesses[array] = (
                self.array_accesses.get(array, 0) + count
            )
        for array, count in other.array_misses.items():
            self.array_misses[array] = self.array_misses.get(array, 0) + count

    # -- derived metrics ----------------------------------------------------------

    @property
    def total_instructions(self) -> int:
        return sum(self.counts.values())

    @property
    def pack_unpack_ops(self) -> int:
        return sum(
            count
            for category, count in self.counts.items()
            if category in PACK_UNPACK_CATEGORIES
        )

    @property
    def dynamic_instructions(self) -> int:
        """Dynamic instructions excluding packing/unpacking (Figure 17)."""
        return self.total_instructions - self.pack_unpack_ops

    @property
    def memory_operations(self) -> int:
        return sum(
            self.counts.get(cat, 0)
            for cat in (
                "scalar_load",
                "scalar_store",
                "vector_load",
                "vector_store",
                "pack_mem_load",
                "unpack_mem_store",
            )
        )

    def summary(self) -> str:
        lines = [f"cycles: {self.cycles:.1f}"]
        lines.append(
            f"instructions: {self.total_instructions} "
            f"(pack/unpack: {self.pack_unpack_ops})"
        )
        lines.append(
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses"
        )
        for category in sorted(self.counts):
            lines.append(f"  {category}: {self.counts[category]}")
        return "\n".join(lines)


def reduction(baseline: float, improved: float) -> float:
    """Relative reduction (the y-axis of Figures 16-21): 1 - new/old."""
    if baseline <= 0:
        return 0.0
    return 1.0 - improved / baseline
