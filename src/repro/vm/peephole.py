"""Superoptimizing peephole pass over vector loop bodies.

The compiled engine (``repro.vm.compiled``) emits one NumPy function
per affine loop. Before emission it runs this pass over the loop body
to strip work the scheduler could not see past — the same class of
redundancies Souper hunts in LLVM IR, restricted to the patterns our
virtual vector ISA actually produces:

* **shuffle-of-shuffle composition** — ``VShuffle(b, a, p)`` followed
  by ``VShuffle(c, b, q)`` (with ``b``'s definition still current)
  becomes ``VShuffle(c, a, p∘q)``; a permutation chain collapses to
  one.
* **identity-shuffle elimination** — a shuffle whose composed
  permutation is the full-width identity becomes a :class:`VCopy`.
* **pack forwarding** — a ``VPack`` whose lanes re-load exactly the
  locations a single earlier register was stored to (with no
  intervening may-alias write) becomes a shuffle — or copy — of that
  register: the *indirect superword reuse* of Section 4.3, recovered
  at emission time when the scheduler materialized it through memory.
* **dead-definition removal** — a pure register definition that is
  redefined before any read is dropped.

The rewritten body is **only** used to generate the functional kernel:
cycle/cache accounting always derives from the original instruction
stream, so reports stay bit-identical to the reference interpreter by
construction. Each rewrite is recorded as a :class:`PeepholeEvent`
carrying the provenance IDs of the instructions involved, and mirrored
to ``TRACE`` when tracing is enabled.

The pass is idempotent: running it on its own output performs no
further rewrites (``tests/test_compiled_engine.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..trace import TRACE
from .isa import (
    Instruction,
    MemRef,
    ScalarExec,
    ScalarRef,
    ValueRef,
    VOp,
    VPack,
    VShuffle,
    VStore,
)

#: Test hook: when set, ``peephole_optimize`` applies this function to
#: its result (``(body, label) -> Optional[new_body]``), letting the
#: differential-fuzz mutation tests inject a *broken* rewrite and prove
#: the 3-engine oracle catches it. Kernel caching is bypassed while a
#: mutator is installed (see ``repro.vm.compiled``).
DEBUG_MUTATOR: Optional[
    Callable[[List[Instruction], str], Optional[List[Instruction]]]
] = None


@dataclass(frozen=True)
class VCopy:
    """Emission-level register copy: ``dst[l] = src[l]`` for all lanes.

    Produced only by this pass (for full-width identity shuffles and
    aligned pack forwards); it never reaches the interpreter, the
    batched engine, or the machine models, so it carries no cost
    metadata.
    """

    dst: int
    src: int
    prov: Optional[str] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class PeepholeEvent:
    """One rewrite performed by the pass."""

    kind: str
    #: Index of the rewritten instruction in the body *at rewrite time*.
    index: int
    #: Provenance IDs of every instruction involved (rewritten one
    #: first), with ``None`` entries dropped.
    provs: Tuple[str, ...]
    detail: str


def _identity(perm: Sequence[int]) -> bool:
    return all(p == l for l, p in enumerate(perm))


def _lanes_of(instr: Optional[Instruction]) -> Optional[int]:
    """Lane count a definition produces, when statically known."""
    if isinstance(instr, VOp):
        return instr.lanes
    if isinstance(instr, VPack):
        return len(instr.sources)
    if isinstance(instr, VShuffle):
        return len(instr.perm)
    return None


def _may_alias(a: ValueRef, b: ValueRef) -> bool:
    """Conservative may-alias for refs inside one loop body: distinct
    affine subscripts of the same array can still collide at some
    iteration, so any same-array pair aliases; scalars alias by name;
    immediates alias nothing."""
    if isinstance(a, MemRef) and isinstance(b, MemRef):
        return a.array == b.array
    if isinstance(a, ScalarRef) and isinstance(b, ScalarRef):
        return a.name == b.name
    return False


def _writes_of(instr: Instruction) -> Tuple[ValueRef, ...]:
    if isinstance(instr, VStore):
        return instr.targets
    if isinstance(instr, ScalarExec):
        return (instr.store,)
    return ()


def _reg_reads(instr: Instruction) -> Tuple[int, ...]:
    if isinstance(instr, VOp):
        return instr.srcs
    if isinstance(instr, (VShuffle, VCopy)):
        return (instr.src,)
    if isinstance(instr, VStore):
        return (instr.src,)
    return ()


def _reg_def(instr: Instruction) -> Optional[int]:
    if isinstance(instr, (VPack, VOp, VShuffle, VCopy)):
        return instr.dst
    return None


def _provs(*instrs: Instruction) -> Tuple[str, ...]:
    out: List[str] = []
    for instr in instrs:
        prov = getattr(instr, "prov", None)
        if prov is not None and prov not in out:
            out.append(prov)
    return tuple(out)


class _Rewriter:
    """One forward pass applying every applicable rewrite in place."""

    def __init__(self, body: List[Instruction], events: List[PeepholeEvent]):
        self.body = body
        self.events = events
        self.changed = False
        #: Latest still-current definition per register.
        self.defs: Dict[int, Instruction] = {}
        #: Memory-forwarding state: stored location -> (register, lane,
        #: def-generation of that register at store time).
        self.stores: Dict[ValueRef, Tuple[int, int, int]] = {}
        self.generation: Dict[int, int] = {}

    def _emit(self, kind: str, index: int, detail: str, *instrs) -> None:
        event = PeepholeEvent(kind, index, _provs(*instrs), detail)
        self.events.append(event)
        if TRACE.enabled:
            TRACE.event(
                "peephole." + kind,
                index=index,
                provs=list(event.provs),
                detail=detail,
            )
        self.changed = True

    def _invalidate_writes(self, instr: Instruction) -> None:
        writes = _writes_of(instr)
        if not writes:
            return
        dead = [
            loc
            for loc in self.stores
            if any(_may_alias(loc, w) for w in writes)
        ]
        for loc in dead:
            del self.stores[loc]

    def run(self) -> None:
        body = self.body
        for i in range(len(body)):
            instr = body[i]
            if isinstance(instr, VShuffle):
                instr = self._rewrite_shuffle(i, instr)
            elif isinstance(instr, VPack):
                instr = self._rewrite_pack(i, instr)
            reg = _reg_def(instr)
            if reg is not None:
                self.defs[reg] = instr
                self.generation[reg] = self.generation.get(reg, 0) + 1
            if isinstance(instr, VStore):
                self._invalidate_writes(instr)
                gen = self.generation.get(instr.src, 0)
                for lane, target in enumerate(instr.targets):
                    self.stores[target] = (instr.src, lane, gen)
            elif isinstance(instr, ScalarExec):
                self._invalidate_writes(instr)

    def _copy_or_shuffle(
        self, dst: int, src: int, perm: Tuple[int, ...], prov: Optional[str]
    ) -> Instruction:
        """A copy is only width-safe when the permutation is the
        identity over *all* of the source's lanes."""
        if _identity(perm) and _lanes_of(self.defs.get(src)) == len(perm):
            return VCopy(dst, src, prov=prov)
        return VShuffle(dst, src, perm, prov=prov)

    def _rewrite_shuffle(self, i: int, instr: VShuffle) -> Instruction:
        src_def = self.defs.get(instr.src)
        if isinstance(src_def, VShuffle):
            # dst[l] = src[perm[l]] and src[k] = origin[inner[k]], so
            # dst[l] = origin[inner[perm[l]]].
            composed = tuple(src_def.perm[p] for p in instr.perm)
            new = self._copy_or_shuffle(
                instr.dst, src_def.src, composed, instr.prov
            )
            self._emit(
                "shuffle_compose",
                i,
                f"v{instr.src} <- v{src_def.src} composed",
                instr,
                src_def,
            )
            self.body[i] = instr = new  # type: ignore[assignment]
        elif isinstance(src_def, VCopy):
            new = self._copy_or_shuffle(
                instr.dst, src_def.src, instr.perm, instr.prov
            )
            self._emit(
                "shuffle_compose",
                i,
                f"v{instr.src} <- v{src_def.src} copy-propagated",
                instr,
                src_def,
            )
            self.body[i] = instr = new  # type: ignore[assignment]
        if isinstance(instr, VShuffle) and _identity(instr.perm):
            if _lanes_of(self.defs.get(instr.src)) == len(instr.perm):
                new = VCopy(instr.dst, instr.src, prov=instr.prov)
                self._emit(
                    "identity_shuffle",
                    i,
                    f"v{instr.dst} = shuffle(v{instr.src}, id)",
                    instr,
                )
                self.body[i] = instr = new  # type: ignore[assignment]
        return instr

    def _rewrite_pack(self, i: int, instr: VPack) -> Instruction:
        hits = []
        for source in instr.sources:
            entry = self.stores.get(source)
            if entry is None:
                return instr
            hits.append(entry)
        regs = {reg for reg, _, _ in hits}
        if len(regs) != 1:
            return instr
        reg = hits[0][0]
        if {gen for _, _, gen in hits} != {self.generation.get(reg, 0)}:
            return instr  # the register was overwritten since the store
        perm = tuple(lane for _, lane, _ in hits)
        new = self._copy_or_shuffle(instr.dst, reg, perm, instr.prov)
        src_def = self.defs.get(reg)
        self._emit(
            "pack_forward",
            i,
            f"v{instr.dst} re-packs lanes of v{reg} via {perm}",
            *([instr] if src_def is None else [instr, src_def]),
        )
        self.body[i] = new
        return new


def _remove_dead_defs(
    body: List[Instruction], events: List[PeepholeEvent]
) -> Tuple[List[Instruction], bool]:
    """Drop pure register definitions that are redefined before any
    read. Definitions still live at the end of the body are kept — the
    engine publishes final register values."""
    dead = set()
    for i, instr in enumerate(body):
        reg = _reg_def(instr)
        if reg is None:
            continue
        for j in range(i + 1, len(body)):
            later = body[j]
            if reg in _reg_reads(later):
                break
            if _reg_def(later) == reg:
                dead.add(i)
                event = PeepholeEvent(
                    "dead_def",
                    i,
                    _provs(instr),
                    f"v{reg} redefined before any read",
                )
                events.append(event)
                if TRACE.enabled:
                    TRACE.event(
                        "peephole.dead_def",
                        index=i,
                        provs=list(event.provs),
                        detail=event.detail,
                    )
                break
    if not dead:
        return body, False
    return [ins for i, ins in enumerate(body) if i not in dead], True


def peephole_optimize(
    body: Sequence[Instruction], label: str = ""
) -> Tuple[List[Instruction], List[PeepholeEvent]]:
    """Optimize one loop body for emission; returns the rewritten body
    and the list of rewrites performed (empty when nothing fired).

    Iterates the rewrite rules to a fixpoint; the result is idempotent
    (a second run performs zero rewrites). ``label`` names the loop for
    :data:`DEBUG_MUTATOR`.
    """
    current = list(body)
    events: List[PeepholeEvent] = []
    for _ in range(len(current) + 2):
        rewriter = _Rewriter(current, events)
        rewriter.run()
        current, removed = _remove_dead_defs(current, events)
        if not rewriter.changed and not removed:
            break
    mutator = DEBUG_MUTATOR
    if mutator is not None:
        mutated = mutator(current, label)
        if mutated is not None:
            current = list(mutated)
    return current, events


__all__ = [
    "DEBUG_MUTATOR",
    "PeepholeEvent",
    "VCopy",
    "peephole_optimize",
]
