"""Compiled loop execution: trace-once NumPy codegen with peepholes.

The batched engine (:mod:`repro.vm.batched`) already decouples
functional execution from timing replay, but it still *interprets* the
decoded slot program every run: per-slot dispatch, per-lane column
bookkeeping, and a sequential LRU replay. This engine goes one step
further, in the spirit of trace-once dynamic binary translators: for
each affine :class:`CompiledLoop` it **emits a specialized Python/NumPy
source function** — closed-form slices from
:func:`repro.vm.codegen.affine_stream`, fused element-wise expressions,
deferred vectorized stores — ``compile()``s the module once, and caches
source + bytecode in the :class:`repro.store.ArtifactStore` keyed by
``(plan content fingerprint, CODEGEN_VERSION, machine)`` so warm
service workers skip emission entirely.

Before emission, the body runs through the superoptimizing peephole
pass (:mod:`repro.vm.peephole`): shuffle-of-shuffle composition,
identity-shuffle and redundant-pack elimination, dead-definition
removal, each rewrite recorded as a trace event carrying provenance
IDs. The optimized body drives only the *functional* kernel; cycle and
cache accounting always derive from the **original** instruction
stream, via the same decode (:func:`repro.vm.batched._decode_loop`),
the same integer charge buckets, and a bulk LRU replay
(:meth:`repro.vm.cache.Cache.replay_lines_bulk`) that is
state-identical to the sequential one — so every ``ExecutionReport``
is exactly equal to the reference interpreter's, provenance included.

Any loop the decode analysis rejects (inner nests at their outer
level, carried scalars/registers, potential array collisions, affines
unbound in the loop index) falls back per-unit to the batched engine
and from there, if needed, to the interpreter; fallbacks are counted
in ``simulate.compiled_fallbacks``.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..ir import Affine, ArrayRef, Const, Expr, Var
from ..perf import count
from .batched import BatchedEngine, _col_last, _decode_loop, _LoopProgram
from .codegen import (
    CompiledCopy,
    CompiledLoop,
    ExecutablePlan,
    affine_stream,
)
from .isa import (
    ImmRef,
    Instruction,
    MemRef,
    ScalarExec,
    ScalarRef,
    VOp,
    VPack,
    VShuffle,
    VStore,
)
from . import peephole
from .peephole import PeepholeEvent, VCopy, peephole_optimize

#: Bumped whenever emitted source semantics change; part of the kernel
#: artifact key, so a version bump invalidates every cached kernel.
#: v2: comparison + select (predication) templates.
CODEGEN_VERSION = 2

#: In-process LRU memo of loaded kernel sets, keyed by fingerprint.
_MEMO: "OrderedDict[str, LoadedPlanKernels]" = OrderedDict()
_MEMO_CAP = 32


# -- artifacts ---------------------------------------------------------------------


@dataclass(frozen=True)
class KernelUnitMeta:
    """Per-loop record inside a kernel artifact."""

    #: Position of the loop in the plan: ``u<idx>`` for a top-level
    #: unit, with one ``.i`` appended per nesting level.
    path: str
    #: Name of the generated function, or None when the loop is a
    #: permanent fallback (not decodable / not statically affine).
    fn_name: Optional[str]
    #: Top-level loops see an empty env, so their affine bases are
    #: compile-time constants; inner loops take bases at call time.
    static: bool
    #: Rewrites the peephole pass performed on this body.
    events: Tuple[PeepholeEvent, ...] = ()


@dataclass
class PlanKernelsArtifact:
    """What the store holds: one generated module per plan × machine."""

    codegen_version: int
    #: ``importlib.util.MAGIC_NUMBER`` of the emitting interpreter; the
    #: marshaled bytecode is only reused when it matches, otherwise the
    #: source is recompiled.
    magic: bytes
    source: str
    bytecode: Optional[bytes]
    units: Tuple[KernelUnitMeta, ...]


@dataclass
class _KernelEntry:
    """One loop's runtime-ready kernel."""

    path: str
    fn: Optional[Callable]
    #: Accounting tables decoded from the *original* body — identical
    #: to what the batched engine would use.
    program: Optional[_LoopProgram]
    static: bool
    #: Arrays the accounting replay touches (stream-cache key basis).
    touch_arrays: Tuple[str, ...] = ()
    #: For static loops: (line_bytes, bases...) -> prebuilt
    #: (lines, touch_ids, lines_per_touch) replay stream.
    stream_cache: Dict[tuple, tuple] = field(default_factory=dict)


@dataclass
class LoadedPlanKernels:
    """A kernel artifact bound to an executable namespace."""

    fingerprint: str
    artifact: PlanKernelsArtifact
    entries: Dict[str, _KernelEntry]


# -- plan walking ------------------------------------------------------------------


def _walk_loops(plan: ExecutablePlan) -> Iterator[Tuple[str, CompiledLoop]]:
    """Every ``CompiledLoop`` in the plan with its stable path key."""
    for uidx, unit in enumerate(plan.units):
        if isinstance(unit, CompiledLoop):
            path = f"u{uidx}"
            node: Optional[CompiledLoop] = unit
            while node is not None:
                yield path, node
                node = node.inner
                path += ".i"


class _ElemShim:
    """The slice of ``Memory`` that ``_decode_loop`` consults — element
    widths and declarations — derivable from the plan alone, so decode
    can run at kernel-load time without building program state."""

    def __init__(self, plan: ExecutablePlan):
        program = plan.program
        self.program = program
        elem = {
            decl.name: decl.type.bytes for decl in program.arrays.values()
        }
        rep_types = {
            unit.replication.new_name: program.arrays[
                unit.replication.source
            ].type
            for unit in plan.units
            if isinstance(unit, CompiledCopy)
        }
        for name in plan.replicated_decls:
            rep = rep_types.get(name)
            elem[name] = rep.bytes if rep else 8
        self._elem_bytes = elem


# -- fingerprinting ----------------------------------------------------------------


def kernel_fingerprint(plan: ExecutablePlan, machine) -> str:
    """Content hash of everything kernel emission depends on.

    Covers the program text, replicated declarations, machine
    parameters (accounting tables bake in unit costs), the codegen
    version, and — per loop — the spec plus every preheader/body
    instruction *including its provenance ID*: ``prov`` is excluded
    from dataclass equality/repr, but the accounting tables key
    provenance sinks by it, so two plans differing only in tagging
    must not share kernels. Memoized on the plan object (plans are
    immutable after codegen)."""
    cache_key = (CODEGEN_VERSION, repr(machine))
    cached = getattr(plan, "_kernel_fp", None)
    if cached is not None and cached[0] == cache_key:
        return cached[1]
    from ..ir.printer import format_program

    digest = hashlib.sha256()

    def feed(text: str) -> None:
        digest.update(text.encode("utf-8"))
        digest.update(b"\x00")

    feed(str(CODEGEN_VERSION))
    feed(format_program(plan.program))
    feed(repr(sorted(plan.replicated_decls.items())))
    feed(repr(machine))
    for path, unit in _walk_loops(plan):
        feed(path)
        feed(repr(unit.spec))
        for instr in list(unit.preheader) + list(unit.body):
            feed(repr(instr))
            feed(repr(getattr(instr, "prov", None)))
    fingerprint = digest.hexdigest()
    try:
        plan._kernel_fp = (cache_key, fingerprint)  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - plans are plain dataclasses
        pass
    return fingerprint


# -- source emission ---------------------------------------------------------------

#: Source templates mirroring ``batched._VEC_FUNCS`` exactly — same
#: NumPy callables, same operand order, so columns match bit for bit.
#: ``min``/``max`` reference their operands twice; operands are always
#: atomic symbols (three-address emission), so that is re-lookup, not
#: re-computation.
_OP_TEMPLATES = {
    "+": "({a} + {b})",
    "-": "({a} - {b})",
    "*": "({a} * {b})",
    "/": "np.divide({a}, {b})",
    "min": "np.where({b} < {a}, {b}, {a})",
    "max": "np.where({b} > {a}, {b}, {a})",
    "neg": "(-{a})",
    "abs": "np.abs({a})",
    "sqrt": "np.sqrt({a})",
    "<": "np.where(np.less({a}, {b}), 1.0, 0.0)",
    "<=": "np.where(np.less_equal({a}, {b}), 1.0, 0.0)",
    ">": "np.where(np.greater({a}, {b}), 1.0, 0.0)",
    ">=": "np.where(np.greater_equal({a}, {b}), 1.0, 0.0)",
    "==": "np.where(np.equal({a}, {b}), 1.0, 0.0)",
    "!=": "np.where(np.not_equal({a}, {b}), 1.0, 0.0)",
    "select": "np.where(np.not_equal({a}, 0.0), {b}, {c})",
}


def _op_source(op: str, args: List[str]) -> str:
    template = _OP_TEMPLATES[op]
    if len(args) == 1:
        return template.format(a=args[0])
    if len(args) == 3:
        return template.format(a=args[0], b=args[1], c=args[2])
    return template.format(a=args[0], b=args[1])


def _const_source(value) -> str:
    """Exact float literal via hex round-trip (repr would lose
    ``inf``/``nan`` spellings as valid source)."""
    return f"float.fromhex('{float(value).hex()}')"


class _Unsupported(Exception):
    """Emission bail-out: the unit becomes a permanent fallback."""


class _UnitEmitter:
    """Emit one loop body as a straight-line NumPy function.

    Symbolic twin of ``batched._Entry``: values are expression symbols
    instead of live columns, with the same store-forwarding map, the
    same gather memoization, and the same deferred-writes-then-finals
    ordering, so the generated function computes bit-identical state.
    Reads materialize as three-address temps in body order — before any
    write lands — and slice reads of arrays the body writes are
    ``.copy()``-ed, because a deferred write through one view must
    never be observed by another (the interpreter reads entry values).
    """

    def __init__(
        self,
        path: str,
        unit: CompiledLoop,
        program: _LoopProgram,
        plan: ExecutablePlan,
        static: bool,
    ):
        self.uid = path.replace(".", "_")
        self.fn_name = f"_k_{self.uid}"
        self.iv = f"_IV_{self.uid}"
        self.unit = unit
        self.program = program
        self.plan = plan
        self.static = static
        spec = unit.spec
        self.index = spec.index
        self.start = spec.start
        self.step = spec.step
        self.trips = spec.trip_count
        self.flat_index = {flat: k for k, flat in enumerate(program.flats)}
        self.static_base: Dict[Affine, int] = {}
        if static:
            for flat in program.flats:
                stream = affine_stream(flat, self.index, {})
                if stream is None:
                    raise _Unsupported("unbound variable at top level")
                self.static_base[flat] = stream[0]
        self.lines: List[str] = []
        self.temp_n = 0
        self.iv_used = False
        self.alias: Dict[str, str] = {}
        self.base_sym: Dict[Affine, str] = {}
        self.scalar_sym: Dict[str, str] = {}
        self.mem_sym: Dict[Tuple[str, Affine], str] = {}
        self.gather_sym: Dict[Tuple[str, Affine], str] = {}
        self.vreg_syms: Dict[int, List[str]] = {}
        self.ext_lane: Dict[Tuple[int, int], str] = {}
        self.writes: List[Tuple[str, Affine, str]] = []
        self.written_arrays = {
            ref.array
            for instr in unit.body
            for ref in _mem_writes(instr)
        }

    # -- bookkeeping ---------------------------------------------------------------

    def _temp(self, expr: str) -> str:
        sym = f"_t{self.temp_n}"
        self.temp_n += 1
        self.lines.append(f"    {sym} = {expr}")
        return sym

    def _alias(self, array: str) -> str:
        sym = self.alias.get(array)
        if sym is None:
            sym = f"_a{len(self.alias)}"
            self.alias[array] = sym
            self.lines.append(f"    {sym} = A[{array!r}]")
        return sym

    def _base_of(self, flat: Affine) -> Tuple[str, Optional[int]]:
        if self.static:
            base = self.static_base[flat]
            return str(base), base
        sym = self.base_sym.get(flat)
        if sym is None:
            k = self.flat_index.get(flat)
            if k is None:
                raise _Unsupported("flat outside the decoded stream table")
            sym = f"_b{k}"
            self.lines.append(f"    {sym} = B[{k}]")
            self.base_sym[flat] = sym
        return sym, None

    def _array_len(self, array: str) -> Optional[int]:
        decl = self.plan.program.arrays.get(array)
        if decl is not None:
            return decl.size
        return self.plan.replicated_decls.get(array)

    def _index_source(
        self, array: str, flat: Affine, stride: int
    ) -> Tuple[str, bool]:
        """RHS/LHS index expression for a strided range: a plain slice
        (a view — zero copy) when the whole range is provably in
        bounds and forward, otherwise the same fancy-index expression
        the batched engine evaluates (identical wrap/raise semantics
        for out-of-range subscripts). Returns (source, is_view)."""
        base_expr, base_val = self._base_of(flat)
        delta = stride * self.step
        if base_val is not None and delta > 0:
            first = base_val + stride * self.start
            last = first + delta * (self.trips - 1)
            size = self._array_len(array)
            if first >= 0 and size is not None and last < size:
                stop = first + delta * self.trips
                tail = "" if delta == 1 else f":{delta}"
                return f"{first}:{stop}{tail}", True
        self.iv_used = True
        return f"{base_expr} + {stride} * {self.iv}", False

    # -- reads ---------------------------------------------------------------------

    def _read_scalar(self, name: str) -> str:
        return self.scalar_sym.get(name) or f"S[{name!r}]"

    def _read_mem(self, array: str, flat: Affine) -> str:
        key = (array, flat)
        sym = self.mem_sym.get(key)
        if sym is not None:
            return sym
        sym = self.gather_sym.get(key)
        if sym is not None:
            return sym
        stride = flat.coeff(self.index)
        alias = self._alias(array)
        if stride == 0:
            base_expr, _ = self._base_of(flat)
            expr = f"float({alias}[{base_expr}])"
        else:
            index_src, is_view = self._index_source(array, flat, stride)
            expr = f"{alias}[{index_src}]"
            if is_view and array in self.written_arrays:
                expr += ".copy()"
        sym = self._temp(expr)
        self.gather_sym[key] = sym
        return sym

    def _read_source(self, ref) -> str:
        if isinstance(ref, ImmRef):
            return _const_source(ref.value)
        if isinstance(ref, ScalarRef):
            return self._read_scalar(ref.name)
        return self._read_mem(ref.array, ref.flat)

    def _vreg_lane(self, reg: int, lane: int) -> str:
        syms = self.vreg_syms.get(reg)
        if syms is not None:
            return syms[lane]
        key = (reg, lane)
        sym = self.ext_lane.get(key)
        if sym is None:
            sym = self._temp(f"float(V[{reg}][{lane}])")
            self.ext_lane[key] = sym
        return sym

    def _eval_expr(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            return _const_source(expr.value)
        if isinstance(expr, Var):
            return self._read_scalar(expr.name)
        if isinstance(expr, ArrayRef):
            decl = self.plan.program.arrays[expr.array]
            flat = Affine((), 0)
            for subscript, dim in zip(expr.subscripts, decl.shape):
                flat = flat * dim + subscript
            return self._read_mem(expr.array, flat)
        args = [self._eval_expr(kid) for kid in expr.children()]
        return self._temp(_op_source(getattr(expr, "op"), args))

    # -- writes ----------------------------------------------------------------------

    def _write_ref(self, ref, sym: str) -> None:
        if isinstance(ref, ScalarRef):
            self.scalar_sym[ref.name] = sym
            return
        key = (ref.array, ref.flat)
        self.mem_sym[key] = sym
        self.writes.append((ref.array, ref.flat, sym))

    # -- top level -------------------------------------------------------------------

    def emit(self, body: List[Instruction]) -> Tuple[str, str]:
        """Returns (module-level source, function source)."""
        for instr in body:
            if isinstance(instr, ScalarExec):
                self._write_ref(
                    instr.store, self._eval_expr(instr.statement.expr)
                )
            elif isinstance(instr, VPack):
                self.vreg_syms[instr.dst] = [
                    self._read_source(src) for src in instr.sources
                ]
            elif isinstance(instr, VOp):
                args_by_lane = [
                    [self._vreg_lane(src, lane) for src in instr.srcs]
                    for lane in range(instr.lanes)
                ]
                self.vreg_syms[instr.dst] = [
                    self._temp(_op_source(instr.op, args))
                    for args in args_by_lane
                ]
            elif isinstance(instr, VShuffle):
                self.vreg_syms[instr.dst] = [
                    self._vreg_lane(instr.src, p) for p in instr.perm
                ]
            elif isinstance(instr, VCopy):
                src = self.vreg_syms.get(instr.src)
                if src is None:
                    raise _Unsupported("copy of externally defined register")
                self.vreg_syms[instr.dst] = list(src)
            elif isinstance(instr, VStore):
                cols = [
                    self._vreg_lane(instr.src, lane)
                    for lane in range(len(instr.targets))
                ]
                for target, col in zip(instr.targets, cols):
                    self._write_ref(target, col)
            else:
                raise _Unsupported(f"unknown instruction {instr!r}")

        # Deferred writes in body order, then scalar and register
        # finals — the exact commit order of ``_Entry.apply``.
        for array, flat, sym in self.writes:
            alias = self._alias(array)
            stride = flat.coeff(self.index)
            if stride == 0:
                base_expr, _ = self._base_of(flat)
                self.lines.append(
                    f"    {alias}[{base_expr}] = _last({sym})"
                )
            else:
                index_src, _ = self._index_source(array, flat, stride)
                self.lines.append(f"    {alias}[{index_src}] = {sym}")
        for name, sym in self.scalar_sym.items():
            self.lines.append(f"    S[{name!r}] = _last({sym})")
        for reg, syms in self.vreg_syms.items():
            lanes = ", ".join(f"_last({sym})" for sym in syms)
            if len(syms) == 1:
                lanes += ","
            self.lines.append(f"    V[{reg}] = ({lanes})")

        spec = self.unit.spec
        module_src = ""
        if self.iv_used:
            module_src = (
                f"{self.iv} = np.arange({spec.start}, {spec.stop}, "
                f"{spec.step}, dtype=np.int64)"
            )
        body_src = "\n".join(self.lines) if self.lines else "    pass"
        fn_src = f"def {self.fn_name}(A, S, V, B):\n{body_src}"
        return module_src, fn_src


def _mem_writes(instr: Instruction) -> Tuple[MemRef, ...]:
    if isinstance(instr, VStore):
        return tuple(
            t for t in instr.targets if isinstance(t, MemRef)
        )
    if isinstance(instr, ScalarExec) and isinstance(instr.store, MemRef):
        return (instr.store,)
    return ()


def emit_plan_kernels(plan: ExecutablePlan, machine) -> PlanKernelsArtifact:
    """Generate the kernel module for every emittable loop of a plan."""
    shim = _ElemShim(plan)
    metas: List[KernelUnitMeta] = []
    module_lines = [
        f"# generated by repro.vm.compiled (CODEGEN_VERSION {CODEGEN_VERSION})"
    ]
    for path, unit in _walk_loops(plan):
        program = _decode_loop(unit, machine, shim)
        if program is None:
            metas.append(KernelUnitMeta(path, None, False))
            continue
        static = "." not in path
        body, events = peephole_optimize(unit.body, label=path)
        try:
            emitter = _UnitEmitter(path, unit, program, plan, static)
            module_src, fn_src = emitter.emit(body)
        except _Unsupported:
            count("compiled.emit_unsupported")
            metas.append(KernelUnitMeta(path, None, static, tuple(events)))
            continue
        if module_src:
            module_lines.append(module_src)
        module_lines.append(fn_src)
        metas.append(
            KernelUnitMeta(path, emitter.fn_name, static, tuple(events))
        )
    source = "\n\n".join(module_lines) + "\n"
    code = compile(source, "<repro-plan-kernels>", "exec")
    return PlanKernelsArtifact(
        codegen_version=CODEGEN_VERSION,
        magic=importlib.util.MAGIC_NUMBER,
        source=source,
        bytecode=marshal.dumps(code),
        units=tuple(metas),
    )


# -- loading -----------------------------------------------------------------------


def _bind_artifact(
    plan: ExecutablePlan,
    machine,
    fingerprint: str,
    artifact: PlanKernelsArtifact,
) -> LoadedPlanKernels:
    """Exec the module and pair every kernel with its accounting
    tables, decoded from the (content-identical) current plan."""
    if (
        artifact.bytecode is not None
        and artifact.magic == importlib.util.MAGIC_NUMBER
    ):
        try:
            code = marshal.loads(artifact.bytecode)
        except Exception:
            code = compile(artifact.source, "<repro-plan-kernels>", "exec")
    else:
        code = compile(artifact.source, "<repro-plan-kernels>", "exec")
    namespace: Dict[str, object] = {"np": np, "_last": _col_last}
    exec(code, namespace)
    shim = _ElemShim(plan)
    units_by_path = dict(_walk_loops(plan))
    entries: Dict[str, _KernelEntry] = {}
    for meta in artifact.units:
        fn = None
        program = None
        unit = units_by_path.get(meta.path)
        if meta.fn_name is not None and unit is not None:
            program = _decode_loop(unit, machine, shim)
            if program is not None:
                fn = namespace.get(meta.fn_name)
        if fn is None:
            program = None
        entries[meta.path] = _KernelEntry(
            meta.path,
            fn,
            program,
            meta.static,
            tuple(sorted({t.array for t in program.touches}))
            if program is not None
            else (),
        )
    return LoadedPlanKernels(fingerprint, artifact, entries)


def load_plan_kernels(
    plan: ExecutablePlan,
    machine,
    kernel_store=None,
) -> LoadedPlanKernels:
    """Kernels for a plan: in-process memo, then the artifact store,
    then fresh emission (written back to both). While a peephole
    :data:`~repro.vm.peephole.DEBUG_MUTATOR` is installed, every cache
    layer is bypassed in both directions so mutated kernels are always
    freshly emitted and never poison a cache."""
    mutating = peephole.DEBUG_MUTATOR is not None
    fingerprint = kernel_fingerprint(plan, machine)
    if not mutating:
        loaded = _MEMO.get(fingerprint)
        if loaded is not None:
            _MEMO.move_to_end(fingerprint)
            count("compiled.kernel_memo_hits")
            return loaded
    artifact = None
    if kernel_store is not None and not mutating:
        artifact = kernel_store.get_kernel(fingerprint)
        if (
            artifact is not None
            and artifact.codegen_version != CODEGEN_VERSION
        ):  # unreachable via keying; belt against hand-copied entries
            artifact = None
        if artifact is not None:
            count("compiled.kernel_store_hits")
    if artifact is None:
        artifact = emit_plan_kernels(plan, machine)
        count("compiled.emissions")
        if kernel_store is not None and not mutating:
            kernel_store.put_kernel(fingerprint, artifact)
    loaded = _bind_artifact(plan, machine, fingerprint, artifact)
    if not mutating:
        _MEMO[fingerprint] = loaded
        while len(_MEMO) > _MEMO_CAP:
            _MEMO.popitem(last=False)
    return loaded


def clear_kernel_memo() -> None:
    """Test hook: drop every in-process loaded kernel."""
    _MEMO.clear()


# -- the engine --------------------------------------------------------------------


class CompiledEngine(BatchedEngine):
    """Batched engine with pre-compiled functional kernels and bulk
    LRU replay. Inherits the accounting (``_account``), the replay
    attribution, the copy-unit path, and the fallback decode — every
    loop without a kernel behaves exactly as under the batched
    engine."""

    def __init__(self, state, plan: ExecutablePlan, kernels):
        super().__init__(state)
        self.compiled_loops = 0
        self.compiled_fallbacks = 0
        self._entries: Dict[int, _KernelEntry] = {}
        if kernels is not None:
            for path, unit in _walk_loops(plan):
                entry = kernels.entries.get(path)
                if entry is not None:
                    self._entries[id(unit)] = entry

    def _replay_stream(self, lines: np.ndarray) -> np.ndarray:
        return self.cache.replay_lines_bulk(lines)

    def run_loop(self, unit: CompiledLoop, env: Dict[str, int]) -> bool:
        entry = self._entries.get(id(unit))
        if entry is None or entry.fn is None:
            return self._fallback(unit, env)
        spec = unit.spec
        trips = spec.trip_count
        if trips == 0:
            env.pop(spec.index, None)
            return True
        program = entry.program
        streams: Dict[Affine, Tuple[int, int]] = {}
        for flat in program.flats:
            stream = affine_stream(flat, spec.index, env)
            if stream is None:
                return self._fallback(unit, env)
            streams[flat] = stream
        memory = self.memory
        bases = (
            ()
            if entry.static
            else tuple(streams[flat][0] for flat in program.flats)
        )
        entry.fn(memory.arrays, memory.scalars, self.state.vregs, bases)
        self._account(program, trips)
        if program.touches:
            key = None
            cached = None
            if entry.static:
                key = (self.cache.config.line_bytes,) + tuple(
                    memory._base[a] for a in entry.touch_arrays
                )
                cached = entry.stream_cache.get(key)
            if cached is None:
                ivals = np.arange(
                    spec.start, spec.stop, spec.step, dtype=np.int64
                )
                cached = self._build_line_stream(
                    program, trips, ivals, streams
                )
                if key is not None:
                    entry.stream_cache[key] = cached
            self._attribute_replay(program, *cached)
        env.pop(spec.index, None)
        self.compiled_loops += 1
        count("simulate.compiled_loops")
        return True

    def _fallback(self, unit: CompiledLoop, env: Dict[str, int]) -> bool:
        self.compiled_fallbacks += 1
        count("simulate.compiled_fallbacks")
        return super().run_loop(unit, env)


__all__ = [
    "CODEGEN_VERSION",
    "CompiledEngine",
    "KernelUnitMeta",
    "LoadedPlanKernels",
    "PlanKernelsArtifact",
    "clear_kernel_memo",
    "emit_plan_kernels",
    "kernel_fingerprint",
    "load_plan_kernels",
]
