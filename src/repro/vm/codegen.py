"""Code generation: schedules → virtual vector ISA.

This is the framework's "post-processing" backend (Figure 3). It turns a
:class:`repro.slp.Schedule` into instruction lists, making the concrete
decisions the SLP stages were optimizing for:

* a source pack already live in a vector register in the *same order* is
  a **direct reuse** — zero instructions;
* live in a different order — one :class:`VShuffle` (indirect reuse:
  "only register permutation instructions", Section 2);
* not live — a :class:`VPack` whose mode depends on contiguity and
  alignment (single wide load for contiguous+aligned superwords, per-lane
  gather otherwise; scalar packs consult the scalar arena layout from
  Section 5.1);
* loop-invariant packs are hoisted into the loop preheader.

The generator tracks pack liveness *soundly*: any write that may alias a
lane of a live pack invalidates that pack, so register reuse never
observes stale data — the differential tests check exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..errors import CodegenError
from ..analysis import operand_key
from ..analysis.alignment import (
    alignment_with_induction,
    flat_affine,
    is_aligned,
)
from ..analysis.operands import OperandKey
from ..ir import (
    Affine,
    ArrayRef,
    BasicBlock,
    Const,
    Expr,
    Program,
    Statement,
    Var,
)
from ..layout.array import ArrayReplication
from ..layout.scalar import ScalarArena
from ..slp.model import Schedule, ScheduledSingle, SuperwordStatement
from ..slp.scheduling import keys_may_alias
from ..trace import TRACE, provenance_id
from .isa import (
    ImmRef,
    Instruction,
    MemRef,
    PackMode,
    ScalarExec,
    ScalarRef,
    StoreMode,
    ValueRef,
    VOp,
    VPack,
    VShuffle,
    VStore,
)
from .machine import MachineModel


# -- executable plan ---------------------------------------------------------------


@dataclass(frozen=True)
class LoopSpec:
    index: str
    start: int
    stop: int
    step: int

    @property
    def trip_count(self) -> int:
        if self.stop <= self.start:
            return 0
        return (self.stop - self.start + self.step - 1) // self.step


@dataclass
class CompiledLoop:
    """One loop level: ``preheader`` runs on entry (in the enclosing
    context), ``body`` runs per iteration, then the nested loop if any."""

    spec: LoopSpec
    preheader: List[Instruction] = field(default_factory=list)
    body: List[Instruction] = field(default_factory=list)
    inner: Optional["CompiledLoop"] = None


@dataclass
class CompiledStraight:
    """A straight-line block executed once."""

    instructions: List[Instruction] = field(default_factory=list)


@dataclass
class CompiledCopy:
    """A data-layout replication copy loop, executed before the kernel.

    Its cost is divided by ``amortization`` — the paper's applications
    run the optimized loops many times per replication, so the copy is
    charged at a configurable fraction (documented in EXPERIMENTS.md).
    """

    replication: ArrayReplication
    amortization: float = 16.0


CompiledUnit = Union[CompiledLoop, CompiledStraight, CompiledCopy]


@dataclass
class ExecutablePlan:
    """Everything the simulator needs to run one program variant."""

    program: Program
    arenas: Dict[str, ScalarArena]
    units: List[CompiledUnit] = field(default_factory=list)
    replicated_decls: Dict[str, int] = field(default_factory=dict)  # name -> elements

    def static_cycles(self, machine: MachineModel) -> float:
        """Cache-oblivious cycle estimate — the cost model that gates
        the transformation (Section 4.3 / Larsen's thesis model)."""
        total = 0.0
        for unit in self.units:
            total += _static_unit_cycles(unit, machine)
        return total


# -- scalar reference helpers -------------------------------------------------------


def value_ref(leaf: Expr, program: Program) -> ValueRef:
    if isinstance(leaf, Const):
        return ImmRef(leaf.value)
    if isinstance(leaf, Var):
        return ScalarRef(leaf.name)
    if isinstance(leaf, ArrayRef):
        return MemRef(leaf.array, flat_affine(leaf, program.arrays[leaf.array]))
    raise TypeError(f"{leaf!r} is not a leaf operand")


def compile_scalar_statement(stmt: Statement, program: Program) -> ScalarExec:
    loads = tuple(
        value_ref(leaf, program)
        for leaf in stmt.expr.leaves()
        if not isinstance(leaf, Const)
    )
    ops = tuple(_collect_ops(stmt.expr))
    return ScalarExec(stmt, loads, ops, value_ref(stmt.target, program))


def _collect_ops(expr: Expr) -> List[str]:
    kids = expr.children()
    if not kids:
        return []
    ops: List[str] = []
    for kid in kids:
        ops.extend(_collect_ops(kid))
    ops.append(getattr(expr, "op"))
    return ops


def compile_scalar_block(
    block: BasicBlock, program: Program
) -> List[Instruction]:
    return [compile_scalar_statement(stmt, program) for stmt in block]


# -- vector codegen ------------------------------------------------------------------


OrderedKey = Tuple[OperandKey, ...]


class VectorCodegen:
    """Generates preheader + body instruction lists for one schedule."""

    def __init__(
        self,
        program: Program,
        machine: MachineModel,
        arenas: Dict[str, ScalarArena],
        innermost_index: Optional[str] = None,
        allow_shuffle_reuse: bool = True,
        loop: Optional[LoopSpec] = None,
        prov_block: Optional[str] = None,
    ):
        """``allow_shuffle_reuse`` models the difference the paper
        highlights in Section 4.3: the original SLP algorithm "neglects"
        indirect superword reuse, i.e. it re-gathers a pack whose data
        sits in a register in a different lane order, where the
        holistic framework emits one register permutation instead. The
        live-pack pool is bounded by the machine's vector register
        count with LRU eviction, so reuse *distance* matters — exactly
        why the scheduling phase brings reuses close together.
        """
        self.program = program
        self.machine = machine
        self.arenas = arenas
        self.innermost_index = innermost_index
        self.allow_shuffle_reuse = allow_shuffle_reuse
        self.loop = loop
        # Provenance tagging is active only when tracing is on at
        # compile time: ``prov_block`` qualifies statement IDs (they
        # restart per block) and ``_prov`` is the ID of the schedule
        # item currently being emitted.
        self.prov_block = prov_block
        self._tagging = TRACE.enabled
        self._prov: Optional[str] = None
        self.preheader: List[Instruction] = []
        self.body: List[Instruction] = []
        self._live: Dict[OrderedKey, int] = {}
        self._orders_by_data: Dict[Tuple, List[OrderedKey]] = {}
        self._pinned: Set[OrderedKey] = set()  # hoisted packs never evict
        self._clock = 0
        self._last_use: Dict[OrderedKey, int] = {}
        self._next_vreg = 0
        self.max_live = 0
        self.reuse_hits = 0
        self.shuffle_reuses = 0
        self._written_scalars: Set[str] = set()
        self._written_arrays: Set[str] = set()

    # -- public -----------------------------------------------------------------------

    def compile(self, schedule: Schedule) -> Tuple[List[Instruction], List[Instruction]]:
        for stmt in schedule.block:
            if isinstance(stmt.target, Var):
                self._written_scalars.add(stmt.target.name)
            else:
                self._written_arrays.add(stmt.target.array)
        for item in schedule.items:
            if isinstance(item, SuperwordStatement):
                self._emit_superword(item)
            else:
                assert isinstance(item, ScheduledSingle)
                self._emit_single(item.statement)
        return self.preheader, self.body

    def _emit(self, instr: Instruction) -> None:
        """Append to the body, stamping the current provenance ID on
        the instruction (frozen dataclass, hence the object.__setattr__;
        the field is compare=False so tagged plans stay interchangeable
        with untagged ones)."""
        if self._prov is not None:
            object.__setattr__(instr, "prov", self._prov)
        self.body.append(instr)

    # -- singles -----------------------------------------------------------------------

    def _emit_single(self, stmt: Statement) -> None:
        self._prov = (
            provenance_id((stmt.sid,), self.prov_block)
            if self._tagging
            else None
        )
        self._emit(compile_scalar_statement(stmt, self.program))
        self._invalidate([operand_key(stmt.target)])

    # -- superword statements -------------------------------------------------------------

    def _emit_superword(self, sw: SuperwordStatement) -> None:
        self._prov = (
            provenance_id(sw.sids, self.prov_block) if self._tagging else None
        )
        root = self._walk(tuple(m.expr for m in sw.members))
        targets = tuple(
            value_ref(m.target, self.program) for m in sw.members
        )
        mode = self._store_mode(targets, sw.element_bits)
        self._emit(VStore(targets, root, mode))
        target_keys = sw.target_pack()
        self._invalidate(list(target_keys))
        self._register(target_keys, root)

    def _walk(self, nodes: Tuple[Expr, ...]) -> int:
        first = nodes[0]
        kids = first.children()
        if not kids:
            keys = tuple(operand_key(n) for n in nodes)
            refs = tuple(value_ref(n, self.program) for n in nodes)
            return self._materialize(keys, refs, first.type.bits)
        child_regs = []
        for position in range(len(kids)):
            child_regs.append(
                self._walk(tuple(n.children()[position] for n in nodes))
            )
        dst = self._fresh()
        self._emit(
            VOp(getattr(first, "op"), dst, tuple(child_regs), len(nodes))
        )
        return dst

    # -- pack materialization ----------------------------------------------------------------

    def _materialize(
        self,
        keys: OrderedKey,
        refs: Tuple[ValueRef, ...],
        element_bits: int,
    ) -> int:
        existing = self._live.get(keys)
        if existing is not None:
            self.reuse_hits += 1
            if self._prov is not None:
                TRACE.event("codegen.reuse", prov=self._prov, kind="direct")
            self._touch(keys)
            return existing

        if self.allow_shuffle_reuse:
            data = tuple(sorted(keys))
            for order in self._orders_by_data.get(data, ()):
                src = self._live.get(order)
                if src is None:
                    continue
                perm = _permutation(order, keys)
                dst = self._fresh()
                self._emit(VShuffle(dst, src, perm))
                self.shuffle_reuses += 1
                if self._prov is not None:
                    TRACE.event(
                        "codegen.reuse",
                        prov=self._prov,
                        kind="shuffle",
                        perm=perm,
                    )
                self._touch(order)
                self._register(keys, dst)
                return dst

        mode = self._pack_mode(refs, element_bits)
        dst = self._fresh()
        instr = VPack(dst, refs, mode)
        hoisted = self._is_invariant(refs)
        if self._prov is not None:
            object.__setattr__(instr, "prov", self._prov)
            TRACE.event(
                "codegen.pack",
                prov=self._prov,
                mode=mode.value,
                hoisted=hoisted,
            )
        if hoisted:
            self.preheader.append(instr)
            self._register(keys, dst, pinned=True)
        else:
            self.body.append(instr)
            self._register(keys, dst)
        return dst

    def _pack_mode(
        self, refs: Tuple[ValueRef, ...], element_bits: int
    ) -> PackMode:
        if all(isinstance(r, ImmRef) for r in refs):
            return PackMode.IMMEDIATE
        if all(isinstance(r, MemRef) for r in refs):
            arrays = {r.array for r in refs}  # type: ignore[union-attr]
            if len(arrays) == 1:
                base = refs[0].flat  # type: ignore[union-attr]
                contiguous = all(
                    _const_delta(refs[lane].flat, base) == lane  # type: ignore[union-attr]
                    for lane in range(len(refs))
                )
                if contiguous:
                    lanes = len(refs)
                    if self._base_aligned(base, lanes):
                        return PackMode.CONTIG_ALIGNED
                    return PackMode.CONTIG_UNALIGNED
                if len({r.flat for r in refs}) == 1:  # type: ignore[union-attr]
                    return PackMode.BROADCAST
            return PackMode.GATHER
        if all(isinstance(r, ScalarRef) for r in refs):
            names = [r.name for r in refs]  # type: ignore[union-attr]
            if len(set(names)) == 1:
                return PackMode.BROADCAST
            if self._arena_contiguous(names, element_bits):
                return PackMode.SCALAR_CONTIG
            return PackMode.SCALAR_GATHER
        return PackMode.MIXED

    def _store_mode(
        self, targets: Tuple[ValueRef, ...], element_bits: int
    ) -> StoreMode:
        if all(isinstance(t, MemRef) for t in targets):
            arrays = {t.array for t in targets}  # type: ignore[union-attr]
            if len(arrays) == 1:
                base = targets[0].flat  # type: ignore[union-attr]
                contiguous = all(
                    _const_delta(targets[lane].flat, base) == lane  # type: ignore[union-attr]
                    for lane in range(len(targets))
                )
                if contiguous:
                    if self._base_aligned(base, len(targets)):
                        return StoreMode.CONTIG_ALIGNED
                    return StoreMode.CONTIG_UNALIGNED
            return StoreMode.SCATTER
        if all(isinstance(t, ScalarRef) for t in targets):
            names = [t.name for t in targets]  # type: ignore[union-attr]
            if self._arena_contiguous(names, element_bits):
                return StoreMode.SCALAR_CONTIG
            return StoreMode.SCALAR_SCATTER
        return StoreMode.SCATTER

    def _base_aligned(self, base: Affine, lanes: int) -> bool:
        """Alignment with induction-variable knowledge when the loop
        bounds are known (the paper's alignment analysis)."""
        if self.loop is not None:
            return alignment_with_induction(
                base, lanes, self.loop.index, self.loop.start, self.loop.step
            ) == 0
        return is_aligned(base, lanes)

    def _arena_contiguous(self, names: Sequence[str], element_bits: int) -> bool:
        if len(set(names)) != len(names):
            return False
        decl = self.program.scalars.get(names[0])
        if decl is None:
            return False
        arena = self.arenas.get(decl.type.name)
        if arena is None:
            return False
        try:
            offsets = [arena.slot(name) for name in names]
        except KeyError:
            return False
        base = offsets[0]
        if base % len(names):
            return False
        return offsets == list(range(base, base + len(names)))

    # -- liveness ---------------------------------------------------------------------------

    def _register(
        self, keys: OrderedKey, vreg: int, pinned: bool = False
    ) -> None:
        # Bounded register file: evict the least-recently-used live pack
        # when every vector register is occupied (hoisted loop-invariant
        # packs are pinned).
        capacity = self.machine.vector_registers
        while len(self._live) >= capacity:
            evictable = [
                order for order in self._live if order not in self._pinned
            ]
            if not evictable:
                break
            victim = min(
                evictable, key=lambda order: self._last_use.get(order, -1)
            )
            self._drop(victim)
        self._live[keys] = vreg
        if pinned:
            self._pinned.add(keys)
        self._touch(keys)
        data = tuple(sorted(keys))
        orders = self._orders_by_data.setdefault(data, [])
        if keys not in orders:
            orders.append(keys)
        self.max_live = max(self.max_live, len(self._live))

    def _touch(self, keys: OrderedKey) -> None:
        self._clock += 1
        self._last_use[keys] = self._clock

    def _drop(self, order: OrderedKey) -> None:
        self._live.pop(order, None)
        self._last_use.pop(order, None)
        self._pinned.discard(order)
        data = tuple(sorted(order))
        orders = self._orders_by_data.get(data)
        if orders and order in orders:
            orders.remove(order)

    def _invalidate(self, written: Sequence[OperandKey]) -> None:
        stale = [
            order
            for order in self._live
            if any(keys_may_alias(k, w) for k in order for w in written)
        ]
        for order in stale:
            self._drop(order)

    def _fresh(self) -> int:
        vreg = self._next_vreg
        self._next_vreg += 1
        return vreg

    # -- hoisting ----------------------------------------------------------------------------

    def _is_invariant(self, refs: Tuple[ValueRef, ...]) -> bool:
        if self.innermost_index is None:
            return False
        for ref in refs:
            if isinstance(ref, ImmRef):
                continue
            if isinstance(ref, ScalarRef):
                if ref.name in self._written_scalars:
                    return False
                continue
            assert isinstance(ref, MemRef)
            if ref.flat.coeff(self.innermost_index) != 0:
                return False
            if ref.array in self._written_arrays:
                return False
        return True


def _const_delta(a: Affine, b: Affine) -> Optional[int]:
    delta = a - b
    if delta.is_constant:
        return delta.const
    return None


def affine_stream(
    flat: Affine, index: str, env: Dict[str, int]
) -> Optional[Tuple[int, int]]:
    """Closed form of a ``MemRef.flat`` over one loop: ``(base, stride)``
    such that the flat element index at iteration value ``i`` is
    ``base + stride * i``.

    ``env`` binds every loop variable other than ``index`` (outer loop
    indices for nested plans). Returns ``None`` when some variable is
    unbound — the batched engine treats that as "not affine in this
    loop" and falls back to the interpreter.
    """
    base = flat.const
    stride = 0
    for name, coeff in flat.coeffs:
        if name == index:
            stride = coeff
        else:
            bound = env.get(name)
            if bound is None:
                return None
            base += coeff * bound
    return base, stride


def _permutation(source: OrderedKey, wanted: OrderedKey) -> Tuple[int, ...]:
    """perm with wanted[l] == source[perm[l]], handling duplicate keys."""
    used: Set[int] = set()
    perm: List[int] = []
    for key in wanted:
        for index, candidate in enumerate(source):
            if candidate == key and index not in used:
                used.add(index)
                perm.append(index)
                break
        else:
            # A duplicate key may be reused from an already-taken lane.
            for index, candidate in enumerate(source):
                if candidate == key:
                    perm.append(index)
                    break
            else:  # pragma: no cover - data multisets always match here
                raise CodegenError("shuffle source does not cover wanted pack")
    return tuple(perm)


# -- static cost estimation ------------------------------------------------------------------


def static_instruction_cycles(
    instr: Instruction, machine: MachineModel
) -> float:
    """Cache-oblivious cost of one instruction (all accesses hit)."""
    if isinstance(instr, ScalarExec):
        cycles = 0.0
        for load in instr.loads:
            cycles += (
                machine.scalar_load
                if isinstance(load, MemRef)
                else machine.scalar_move
            )
        for op in instr.ops:
            cycles += machine.op_cost(op)
        cycles += (
            machine.scalar_store
            if isinstance(instr.store, MemRef)
            else machine.scalar_move
        )
        return cycles
    if isinstance(instr, VPack):
        lanes = len(instr.sources)
        mode = instr.mode
        if mode is PackMode.CONTIG_ALIGNED:
            return machine.vector_load
        if mode is PackMode.CONTIG_UNALIGNED:
            return machine.vector_load + machine.unaligned_extra
        if mode is PackMode.SCALAR_CONTIG:
            return machine.vector_load
        if mode is PackMode.IMMEDIATE:
            return machine.imm_vector
        if mode is PackMode.BROADCAST:
            first = instr.sources[0]
            read = (
                machine.scalar_load
                if isinstance(first, MemRef)
                else machine.scalar_move
            )
            return read + machine.broadcast
        if mode is PackMode.GATHER:
            return lanes * (machine.scalar_load + machine.lane_insert)
        if mode is PackMode.SCALAR_GATHER:
            return lanes * (machine.scalar_move + machine.lane_insert)
        # MIXED
        cycles = 0.0
        for src in instr.sources:
            if isinstance(src, MemRef):
                cycles += machine.scalar_load
            elif isinstance(src, ScalarRef):
                cycles += machine.scalar_move
            cycles += machine.lane_insert
        return cycles
    if isinstance(instr, VOp):
        return machine.op_cost(instr.op)
    if isinstance(instr, VShuffle):
        return machine.shuffle
    if isinstance(instr, VStore):
        lanes = len(instr.targets)
        mode = instr.mode
        if mode is StoreMode.CONTIG_ALIGNED:
            return machine.vector_store
        if mode is StoreMode.CONTIG_UNALIGNED:
            return machine.vector_store + machine.unaligned_extra
        if mode is StoreMode.SCALAR_CONTIG:
            return machine.vector_store
        if mode is StoreMode.SCATTER:
            return lanes * (machine.lane_extract + machine.scalar_store)
        return lanes * (machine.lane_extract + machine.scalar_move)
    raise TypeError(f"unknown instruction {instr!r}")


def _static_unit_cycles(unit: CompiledUnit, machine: MachineModel) -> float:
    if isinstance(unit, CompiledStraight):
        return sum(
            static_instruction_cycles(i, machine) for i in unit.instructions
        )
    if isinstance(unit, CompiledCopy):
        rep = unit.replication
        per_element = machine.scalar_load + machine.scalar_store
        return rep.elements * per_element / unit.amortization
    assert isinstance(unit, CompiledLoop)
    trips = unit.spec.trip_count
    own = sum(
        static_instruction_cycles(i, machine) for i in unit.preheader
    )
    body = sum(static_instruction_cycles(i, machine) for i in unit.body)
    inner = (
        _static_unit_cycles(unit.inner, machine) if unit.inner else 0.0
    )
    return own + trips * (body + inner)
