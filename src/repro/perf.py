"""Compile-time observability: a process-global registry of nestable
section timers and event counters.

Every future PR changes something on the compiler's hot path; this
module makes those changes visible instead of anecdotal. The registry is
**off by default** and costs one attribute load per call site when
disabled, so production compiles pay nothing. Enable it around a region
of interest::

    from repro.perf import PERF, section, count

    PERF.enable()
    with section("grouping.decide"):
        ...                      # nested section() calls stack
    count("grouping.scores_recomputed")
    print(PERF.report())

Sections are identified by dotted names. Nesting is tracked dynamically:
a section entered while another is open records under
``outer;inner`` as well as its own flat name, so the report can show
both the flat totals and where the time actually sat. Counters are plain
named integers.

The registry also supports snapshot/merge so worker processes (the
parallel bench runner) can ship their measurements back to the parent.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SectionStat:
    """Accumulated wall time and entry count of one section name."""

    seconds: float = 0.0
    calls: int = 0

    def add(self, seconds: float, calls: int = 1) -> None:
        self.seconds += seconds
        self.calls += calls


class _NullSection:
    """The disabled-path context manager: a shared, stateless no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SECTION = _NullSection()


class _Section:
    """One live timer; records on exit under both the flat name and the
    ``;``-joined nesting path."""

    __slots__ = ("registry", "name", "path", "started", "_generation")

    def __init__(self, registry: "PerfRegistry", name: str):
        self.registry = registry
        self.name = name
        self.path = ""
        self.started = 0.0
        self._generation = -1

    def __enter__(self) -> "_Section":
        registry = self.registry
        stack = registry._stack
        self.path = (
            f"{stack[-1]};{self.name}" if stack else self.name
        )
        stack.append(self.path)
        self._generation = registry._generation
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self.started
        registry = self.registry
        stack = registry._stack
        # A reset() while this section was open cleared the stack (and
        # bumped the generation); unwinding must not pop frames that
        # belong to the new epoch or record against the stale path.
        if (
            registry._generation != self._generation
            or not stack
            or stack[-1] != self.path
        ):
            return
        stack.pop()
        if not registry.enabled:
            return  # disabled mid-section: drop the partial timing
        registry._record(self.name, elapsed)
        if self.path != self.name:
            registry._record(self.path, elapsed)


class PerfRegistry:
    """Process-global store of section timings and counters."""

    def __init__(self) -> None:
        self.enabled = False
        self.sections: Dict[str, SectionStat] = {}
        self.counters: Dict[str, int] = {}
        self._stack: List[str] = []
        self._generation = 0

    # -- control ---------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Clear all measurements. Safe while sections are open: the
        generation bump invalidates their pending ``__exit__``."""
        self.sections.clear()
        self.counters.clear()
        self._stack.clear()
        self._generation += 1

    # -- recording -------------------------------------------------------------

    def section(self, name: str):
        """A context manager timing one region; no-op when disabled."""
        if not self.enabled:
            return _NULL_SECTION
        return _Section(self, name)

    def count(self, name: str, delta: int = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + delta

    def _record(self, name: str, seconds: float) -> None:
        stat = self.sections.get(name)
        if stat is None:
            stat = self.sections[name] = SectionStat()
        stat.add(seconds)

    # -- aggregation -----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A picklable copy of everything recorded so far."""
        return {
            "sections": {
                name: (stat.seconds, stat.calls)
                for name, stat in self.sections.items()
            },
            "counters": dict(self.counters),
        }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold a worker's :meth:`snapshot` into this registry."""
        for name, (seconds, calls) in snapshot.get("sections", {}).items():
            stat = self.sections.get(name)
            if stat is None:
                stat = self.sections[name] = SectionStat()
            stat.add(seconds, calls)
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value

    def report(self, nested: bool = False) -> str:
        """Human-readable timings table; flat names only unless
        ``nested``."""
        lines = ["-- timings --"]
        names = [
            name
            for name in self.sections
            if nested or ";" not in name
        ]
        width = max((len(n) for n in names), default=0)
        for name in sorted(
            names, key=lambda n: -self.sections[n].seconds
        ):
            stat = self.sections[name]
            lines.append(
                f"  {name:<{width}}  {stat.seconds * 1e3:10.2f} ms"
                f"  x{stat.calls}"
            )
        if self.counters:
            lines.append("-- counters --")
            cwidth = max(len(n) for n in self.counters)
            for name in sorted(self.counters):
                lines.append(
                    f"  {name:<{cwidth}}  {self.counters[name]}"
                )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)


#: The process-global registry every call site shares.
PERF = PerfRegistry()


def section(name: str):
    """Module-level shorthand for ``PERF.section(name)``."""
    return PERF.section(name)


def count(name: str, delta: int = 1) -> None:
    """Module-level shorthand for ``PERF.count(name, delta)``."""
    PERF.count(name, delta)
