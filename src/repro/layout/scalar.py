"""Data layout optimization for scalar superwords (Section 5.1,
Figure 12 lines 10–22).

Scalars are memory-resident in the paper's source-to-source model, so a
superword of scalars costs one wide memory operation when its variables
sit in consecutive, aligned slots — and one operation *per lane*
otherwise. This pass assigns stack-arena slots: scalar superwords are
sorted by occurrence count, the most frequent one gets consecutive
aligned slots in superword order, superwords sharing a variable with an
already-placed one are skipped (conflicting layout requirements), and
leftover scalars are appended in declaration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from ..analysis.operands import KIND_VAR
from ..ir import Program, ScalarType
from ..trace import TRACE
from ..slp.model import OrderedPack, Schedule


@dataclass
class ScalarArena:
    """One contiguous stack area per element type."""

    type: ScalarType
    slots: Dict[str, int] = field(default_factory=dict)
    size: int = 0

    def place(self, names: Sequence[str], align: int) -> None:
        if self.size % align:
            self.size += align - self.size % align
        for name in names:
            self.slots[name] = self.size
            self.size += 1

    def slot(self, name: str) -> int:
        return self.slots[name]


def scalar_packs_of(schedule: Schedule) -> List[OrderedPack]:
    """Every ordered all-scalar pack (targets and sources) the schedule's
    superword statements touch, with repetition."""
    packs: List[OrderedPack] = []
    for sw in schedule.superwords():
        for pack in sw.ordered_packs():
            if all(key[0] == KIND_VAR for key in pack):
                packs.append(pack)
    return packs


def default_scalar_layout(program: Program) -> Dict[str, ScalarArena]:
    """Declaration-order slots — the baseline layout every variant that
    does not run the optimization uses."""
    arenas: Dict[str, ScalarArena] = {}
    for decl in program.scalars.values():
        arena = arenas.setdefault(decl.type.name, ScalarArena(decl.type))
        arena.place([decl.name], align=1)
    return arenas


def optimized_scalar_layout(
    program: Program, schedules: Iterable[Schedule]
) -> Dict[str, ScalarArena]:
    """Occurrence-ranked placement of scalar superwords."""
    counts: Dict[OrderedPack, int] = {}
    for schedule in schedules:
        for pack in scalar_packs_of(schedule):
            counts[pack] = counts.get(pack, 0) + 1

    arenas: Dict[str, ScalarArena] = {}
    placed: set = set()
    ranked = sorted(
        counts.items(), key=lambda item: (-item[1], item[0])
    )
    for pack, _count in ranked:
        names = [key[1] for key in pack]
        if len(set(names)) != len(names):
            continue  # a splat pack cannot be laid out contiguously
        if any(name in placed for name in names):
            continue  # conflicting layout requirement: skip (Figure 12 l.15-19)
        elem = program.scalars[names[0]].type
        if any(program.scalars[n].type != elem for n in names):
            continue
        arena = arenas.setdefault(elem.name, ScalarArena(elem))
        arena.place(names, align=len(names))
        if TRACE.enabled:
            TRACE.event(
                "layout.scalars",
                names=list(names),
                base=arena.slot(names[0]),
            )
        placed.update(names)

    # Everything not covered by a placed superword keeps declaration order.
    for decl in program.scalars.values():
        if decl.name in placed:
            continue
        arena = arenas.setdefault(decl.type.name, ScalarArena(decl.type))
        arena.place([decl.name], align=1)
        placed.add(decl.name)
    return arenas


def pack_is_contiguous(
    pack: OrderedPack, arenas: Dict[str, ScalarArena], elem: ScalarType
) -> bool:
    """Whether an ordered scalar pack occupies consecutive aligned slots
    (one memory operation suffices to pack/unpack it)."""
    arena = arenas.get(elem.name)
    if arena is None:
        return False
    try:
        offsets = [arena.slot(key[1]) for key in pack]
    except KeyError:
        return False
    base = offsets[0]
    if base % len(pack):
        return False
    return offsets == list(range(base, base + len(pack)))
