"""Polyhedral machinery for the array-reference layout optimization
(Section 5.2, Equations 1–8).

The paper expresses a reference's access pattern as ``r = Q·i + O``
(Equation 1), derives a layout transformation matrix ``M`` from
``L_default · M = L_opt`` (Equation 2), and then maps the data touched by
the transformed reference into a fresh array ``B`` so the reference
becomes a stride-``L`` access at offset ``p`` (its lane position inside
the superword). Equations 4, 5 and 8 give the mapping function for 1-D,
2-D and N-D arrays.

This module implements those functions verbatim; the production path in
:mod:`repro.layout.array` uses the (equivalent) flattened 1-D form, and
the tests cross-check both against brute-force enumeration.
"""

from __future__ import annotations

from ..errors import LayoutError
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


def transformation_matrix(
    l_default: np.ndarray, l_opt: np.ndarray
) -> np.ndarray:
    """Solve ``L_default · M = L_opt`` (Equation 2) over the rationals.

    Both layouts are given as integer matrices; raises when ``L_default``
    is singular or the solution is not integral.
    """
    default = np.asarray(l_default, dtype=np.int64)
    opt = np.asarray(l_opt, dtype=np.int64)
    det = round(np.linalg.det(default))
    if det == 0:
        raise LayoutError("default layout matrix is singular")
    solution = np.linalg.solve(default.astype(float), opt.astype(float))
    rounded = np.rint(solution).astype(np.int64)
    if not np.allclose(solution, rounded):
        raise LayoutError("layout transformation is not integral")
    return rounded


def transform_access(
    Q: np.ndarray, O: np.ndarray, M: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Equation 3: the transformed reference ``r1 = (M·Q)·i + M·O``."""
    M = np.asarray(M, dtype=np.int64)
    return M @ np.asarray(Q, dtype=np.int64), M @ np.asarray(
        O, dtype=np.int64
    )


def map_index_1d(d: int, a: int, b: int, L: int, p: int) -> int:
    """Equation 4: ``f(d) = ((d - b) / a) · L + p`` for ``R1 = A[a·i + b]``.

    ``d`` must actually be accessed by the reference (``a | d - b``).
    """
    if a == 0:
        raise LayoutError("reference does not move: a = 0")
    quotient, remainder = divmod(d - b, a)
    if remainder:
        raise LayoutError(f"index {d} is not accessed by A[{a}*i + {b}]")
    return quotient * L + p


def map_index_2d(
    d: Sequence[int],
    Q1: np.ndarray,
    O1: np.ndarray,
    L: int,
    p: int,
) -> Tuple[int, int]:
    """Equation 5 for a 2-D array with lower-triangular
    ``Q1 = [[q11, 0], [q21, q22]]``::

        f(d) = ( (d1 - o1)/q11 ,
                 ((d2 - o2 - q21·(d1 - o1)/q11) / q22) · L + p )
    """
    Q1 = np.asarray(Q1, dtype=np.int64)
    O1 = np.asarray(O1, dtype=np.int64)
    d1, d2 = int(d[0]), int(d[1])
    q11, q21, q22 = int(Q1[0, 0]), int(Q1[1, 0]), int(Q1[1, 1])
    if Q1[0, 1] != 0:
        raise LayoutError("Equation 5 expects q12 = 0")
    o1, o2 = int(O1[0]), int(O1[1])
    row, rem = divmod(d1 - o1, q11)
    if rem:
        raise LayoutError("d1 not accessed by the reference")
    col_num = d2 - o2 - q21 * row
    col, rem = divmod(col_num, q22)
    if rem:
        raise LayoutError("d2 not accessed by the reference")
    return (row, col * L + p)


def map_index_general(
    d: Sequence[int],
    Q1: np.ndarray,
    O1: np.ndarray,
    L: int,
    p: int,
) -> Tuple[int, ...]:
    """Equations 7–8 for an N-D array.

    Split the access into the leading N-1 dimensions (Equation 7 —
    invertible ``Q1'``) and the last dimension, which becomes the
    strided coordinate ``f_n(d)·L + p`` (Equation 8).
    """
    Q1 = np.asarray(Q1, dtype=np.int64)
    O1 = np.asarray(O1, dtype=np.int64)
    n = len(d)
    if n == 1:
        # Degenerates to Equation 4.
        return (map_index_1d(int(d[0]), int(Q1[0, 0]), int(O1[0]), L, p),)

    lead_Q = Q1[: n - 1, : n - 1]
    lead_O = O1[: n - 1]
    det = round(np.linalg.det(lead_Q.astype(float)))
    if det == 0:
        raise LayoutError("Q1' must be nonsingular (Equation 6)")
    lead_d = np.asarray(d[: n - 1], dtype=np.int64) - lead_O
    solved = np.linalg.solve(lead_Q.astype(float), lead_d.astype(float))
    lead = np.rint(solved).astype(np.int64)
    if not np.allclose(solved, lead):
        raise LayoutError("leading dimensions not accessed by the reference")

    # Equation 8: the last coordinate, after subtracting the contribution
    # of the already-recovered leading iteration values.
    q_last_row = Q1[n - 1, : n - 1]
    q_nn = int(Q1[n - 1, n - 1])
    if q_nn == 0:
        raise LayoutError("innermost coefficient q_nn must be nonzero")
    numerator = int(d[n - 1]) - int(O1[n - 1]) - int(q_last_row @ lead)
    inner, rem = divmod(numerator, q_nn)
    if rem:
        raise LayoutError("last dimension not accessed by the reference")
    return tuple(int(x) for x in lead) + (inner * L + p,)


@dataclass(frozen=True)
class StridedMapping:
    """The realized mapping for one lane of an array-reference superword:
    iteration ``j`` (0-based) of the target loop reads new-array element
    ``L·j + p`` — the defining property of Section 5.2's optimization."""

    L: int
    p: int

    def destination(self, j: int) -> int:
        return self.L * j + self.p
