"""Data layout optimization for array-reference superwords (Section 5.2,
Figure 12 lines 23–39).

For a source superword ``<A[g_0(i)], ..., A[g_{L-1}(i)]>`` of read-only
references inside an affine loop, the pass materializes a fresh array
``B`` with ``B[L·j + k] = A[g_k(i_j)]`` (iteration ``j``, lane ``k``) and
rewrites the references to ``B[q·i + c_k]`` — a contiguous, aligned,
stride-``L`` access that packs with a single wide load. This is the
flattened realization of Equations 4–8 (the polyhedral forms live in
:mod:`repro.layout.polyhedral` and the tests check they agree).

Constraints (as in the paper): intra-array packs, read-only references,
affine subscripts of the innermost loop index, and enough memory for the
replicated data — packs violating any of them are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..analysis.alignment import flat_affine
from ..trace import TRACE
from ..ir import (
    Affine,
    ArrayRef,
    BasicBlock,
    Expr,
    Program,
    Statement,
)
from ..slp.model import (
    Schedule,
    ScheduledSingle,
    SuperwordStatement,
)


@dataclass(frozen=True)
class LoopContext:
    """The innermost loop enclosing the block being optimized."""

    index: str
    start: int
    stop: int
    step: int

    @property
    def trip_count(self) -> int:
        if self.stop <= self.start:
            return 0
        return (self.stop - self.start + self.step - 1) // self.step


@dataclass(frozen=True)
class ArrayReplication:
    """One planned replication: the copy loop the runtime must execute
    before the kernel loop, and the shape of the new array."""

    new_name: str
    source: str
    lane_flats: Tuple[Affine, ...]  # flat source index per lane, in i
    loop: LoopContext
    q: int                          # new-subscript coefficient L // step

    @property
    def lanes(self) -> int:
        return len(self.lane_flats)

    @property
    def elements(self) -> int:
        return self.lanes * self.loop.trip_count

    def new_subscript(self, lane: int) -> Affine:
        """``B``'s subscript for lane ``k``: ``q·i + (k - q·start)``."""
        return Affine.var(self.loop.index, self.q) + (
            lane - self.q * self.loop.start
        )

    def copy_pairs(self) -> Iterable[Tuple[int, int]]:
        """(destination flat index, source flat index) for every element —
        the semantics of the copy loop, used by the VM and the tests."""
        for j, i in enumerate(
            range(self.loop.start, self.loop.stop, self.loop.step)
        ):
            for k, flat in enumerate(self.lane_flats):
                yield (self.lanes * j + k, flat.evaluate({self.loop.index: i}))


@dataclass
class ArrayLayoutPlan:
    """All replications for one block plus the leaf rewrites to apply."""

    replications: List[ArrayReplication]
    # (sid, rhs leaf index) -> replacement reference
    rewrites: Dict[Tuple[int, int], ArrayRef]

    @property
    def total_elements(self) -> int:
        return sum(r.elements for r in self.replications)


def written_arrays(program: Program) -> Set[str]:
    """Arrays that appear as a store target anywhere in the program —
    ineligible for replication (the copy would go stale)."""
    names: Set[str] = set()
    for block in program.blocks():
        for stmt in block:
            if isinstance(stmt.target, ArrayRef):
                names.add(stmt.target.array)
    return names


def plan_array_layout(
    program: Program,
    schedule: Schedule,
    loop: LoopContext,
    budget_elements: int,
    name_prefix: str = "__slp_rep",
) -> ArrayLayoutPlan:
    """Plan replications for every eligible source pack of a schedule."""
    unsafe = written_arrays(program)
    taken = set(program.arrays) | set(program.scalars)
    plan = ArrayLayoutPlan([], {})
    by_pack: Dict[Tuple, ArrayReplication] = {}
    spent = 0

    for sw in schedule.superwords():
        for position in range(1, sw.position_count()):
            lanes = sw.lane_exprs(position)
            replication = _eligible(
                lanes, program, loop, unsafe
            )
            if replication is None:
                continue
            key = tuple(
                (leaf.array, flat_affine(leaf, program.arrays[leaf.array]))
                for leaf in lanes  # type: ignore[union-attr]
            )
            existing = by_pack.get(key)
            if existing is None:
                if spent + replication.elements > budget_elements:
                    if TRACE.enabled:
                        TRACE.event(
                            "layout.skip",
                            source=replication.source,
                            reason="budget",
                            elements=replication.elements,
                        )
                    continue  # over budget: keep the original layout
                new_name = f"{name_prefix}{len(by_pack)}"
                while new_name in taken:
                    new_name += "_"
                taken.add(new_name)
                replication = ArrayReplication(
                    new_name,
                    replication.source,
                    replication.lane_flats,
                    replication.loop,
                    replication.q,
                )
                by_pack[key] = replication
                plan.replications.append(replication)
                spent += replication.elements
                if TRACE.enabled:
                    TRACE.event(
                        "layout.replicate",
                        array=replication.new_name,
                        source=replication.source,
                        lanes=replication.lanes,
                        elements=replication.elements,
                    )
                existing = replication
            elem = program.arrays[existing.source].type
            for lane, member in enumerate(sw.members):
                leaf_index = position - 1  # RHS leaves start at position 1
                plan.rewrites[(member.sid, leaf_index)] = ArrayRef(
                    existing.new_name,
                    (existing.new_subscript(lane),),
                    elem,
                )
    return plan


def _eligible(
    lanes: Sequence[Expr],
    program: Program,
    loop: LoopContext,
    unsafe: Set[str],
) -> Optional[ArrayReplication]:
    if not all(isinstance(leaf, ArrayRef) for leaf in lanes):
        return None
    refs = [leaf for leaf in lanes]  # type: ignore[list-item]
    array = refs[0].array  # type: ignore[union-attr]
    if any(r.array != array for r in refs):  # type: ignore[union-attr]
        return None
    if array in unsafe:
        return None
    L = len(refs)
    if L % loop.step:
        return None  # q = L/step must be integral for an affine rewrite
    decl = program.arrays[array]
    flats: List[Affine] = []
    for ref in refs:
        flat = flat_affine(ref, decl)  # type: ignore[arg-type]
        extra = set(flat.variables()) - {loop.index}
        if extra:
            return None  # depends on an outer index: skip (documented)
        flats.append(flat)
    if all(flat.is_constant for flat in flats):
        return None  # loop-invariant pack: hoisting already handles it
    base = flats[0]
    if all(
        (flat - base).is_constant and (flat - base).const == lane
        for lane, flat in enumerate(flats)
    ):
        return None  # already contiguous: replication has nothing to offer
    return ArrayReplication(
        new_name="",  # assigned by the caller
        source=array,
        lane_flats=tuple(flats),
        loop=loop,
        q=L // loop.step,
    )


# ---------------------------------------------------------------------------
# Applying the plan
# ---------------------------------------------------------------------------


def _replace_rhs_leaves(
    expr: Expr, replacements: Dict[int, ArrayRef], counter: List[int]
) -> Expr:
    kids = expr.children()
    if not kids:
        index = counter[0]
        counter[0] += 1
        return replacements.get(index, expr)
    return expr.with_children(
        tuple(_replace_rhs_leaves(k, replacements, counter) for k in kids)
    )


def apply_array_layout(
    block: BasicBlock, schedule: Schedule, plan: ArrayLayoutPlan
) -> Tuple[BasicBlock, Schedule]:
    """Rewrite the block's statements per the plan and rebuild the
    schedule over the rewritten statements (same sids, same structure)."""
    if not plan.rewrites:
        return block, schedule

    per_sid: Dict[int, Dict[int, ArrayRef]] = {}
    for (sid, leaf_index), ref in plan.rewrites.items():
        per_sid.setdefault(sid, {})[leaf_index] = ref

    new_statements = []
    for stmt in block:
        replacements = per_sid.get(stmt.sid)
        if not replacements:
            new_statements.append(stmt)
            continue
        expr = _replace_rhs_leaves(stmt.expr, replacements, [0])
        new_statements.append(Statement(stmt.sid, stmt.target, expr))
    new_block = BasicBlock(new_statements)

    new_schedule = Schedule(new_block)
    for item in schedule.items:
        if isinstance(item, SuperwordStatement):
            new_schedule.items.append(
                SuperwordStatement(
                    tuple(new_block[m.sid] for m in item.members)
                )
            )
        else:
            assert isinstance(item, ScheduledSingle)
            new_schedule.items.append(
                ScheduledSingle(new_block[item.statement.sid])
            )
    return new_block, new_schedule
