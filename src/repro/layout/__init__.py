"""Data layout optimization — the second stage of the framework
(Section 5): scalar superword offset assignment and array-reference
superword transformation/replication."""

from .array import (
    ArrayLayoutPlan,
    ArrayReplication,
    LoopContext,
    apply_array_layout,
    plan_array_layout,
    written_arrays,
)
from .polyhedral import (
    StridedMapping,
    map_index_1d,
    map_index_2d,
    map_index_general,
    transform_access,
    transformation_matrix,
)
from .scalar import (
    ScalarArena,
    default_scalar_layout,
    optimized_scalar_layout,
    pack_is_contiguous,
    scalar_packs_of,
)

__all__ = [
    "ArrayLayoutPlan",
    "ArrayReplication",
    "LoopContext",
    "ScalarArena",
    "StridedMapping",
    "apply_array_layout",
    "default_scalar_layout",
    "map_index_1d",
    "map_index_2d",
    "map_index_general",
    "optimized_scalar_layout",
    "pack_is_contiguous",
    "plan_array_layout",
    "scalar_packs_of",
    "transform_access",
    "transformation_matrix",
    "written_arrays",
]
