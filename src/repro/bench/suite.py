"""The evaluation harness: run kernels through every compiler variant on
a simulated machine and collect the measurements the paper's figures
plot.

``run_kernel`` produces one benchmark's four-variant comparison;
``run_suite`` sweeps the whole Table 3 suite; ``run_multicore`` produces
one Figure 21 data point (P cores = each core runs a 1/P slice with a
private L1, plus a synchronization overhead shared by both versions).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from ..compiler import (
    CompileResult,
    CompilerOptions,
    CompileStats,
    Variant,
    compile_program,
)
from ..errors import Diagnostic, SuiteError, format_failure
from ..perf import PERF
from ..store import ArtifactStore
from ..trace import TRACE, fold_report, summarize, to_jsonl
from ..vm import (
    ExecutionReport,
    MachineModel,
    Memory,
    MulticorePoint,
    Simulator,
    parallel_cycles,
    reduction,
)
from .kernels import ALL_KERNELS, KERNELS, Kernel

DEFAULT_VARIANTS: Tuple[Variant, ...] = (
    Variant.SCALAR,
    Variant.NATIVE,
    Variant.SLP,
    Variant.GLOBAL,
    Variant.GLOBAL_LAYOUT,
)


@dataclass
class VariantRun:
    variant: Variant
    report: ExecutionReport
    stats: CompileStats
    memory: Memory


@dataclass
class KernelResult:
    """One benchmark across variants, plus derived figure metrics."""

    kernel: Kernel
    runs: Dict[Variant, VariantRun] = field(default_factory=dict)
    # Per-variant ``repro.trace.summarize`` dicts, filled only when the
    # suite runs with a trace directory. Plain dicts so results pickle
    # across the worker-pool boundary.
    trace_summaries: Dict[Variant, dict] = field(default_factory=dict)
    # Per-variant compile diagnostics (graceful-degradation fallbacks,
    # skipped layout plans, ...). Empty unless a compile degraded.
    diagnostics: Dict[Variant, Tuple[Diagnostic, ...]] = field(
        default_factory=dict
    )

    def cycles(self, variant: Variant) -> float:
        return self.runs[variant].report.cycles

    def time_reduction(self, variant: Variant) -> float:
        """Execution-time reduction over scalar (Figures 16/19/20)."""
        return reduction(self.cycles(Variant.SCALAR), self.cycles(variant))

    def dyn_instr_reduction_over(
        self, better: Variant, worse: Variant
    ) -> float:
        """Figure 17 left axis: dynamic instructions (excl. pack/unpack)."""
        return reduction(
            self.runs[worse].report.dynamic_instructions,
            self.runs[better].report.dynamic_instructions,
        )

    def pack_unpack_reduction_over(
        self, better: Variant, worse: Variant
    ) -> float:
        """Figure 17 right axis: packing/unpacking overhead."""
        return reduction(
            self.runs[worse].report.pack_unpack_ops,
            self.runs[better].report.pack_unpack_ops,
        )

    def dyn_instr_elimination(self, variant: Variant) -> float:
        """Figure 18: dynamic instructions eliminated vs. scalar code."""
        return reduction(
            self.runs[Variant.SCALAR].report.total_instructions,
            self.runs[variant].report.total_instructions,
        )

    def semantics_preserved(self) -> bool:
        base = self.runs[Variant.SCALAR].memory
        return all(
            run.memory.state_equal(base)
            for variant, run in self.runs.items()
            if variant is not Variant.SCALAR
        )


#: Deprecation alias: the compile cache was promoted to the
#: content-addressed :class:`repro.store.ArtifactStore` (shared by the
#: bench runner, the compile service, and the ``repro cache`` CLI).
#: The old import path keeps working; old on-disk entries are read
#: unchanged (they hold pickled ``CompileResult`` objects, never the
#: store class itself).
CompileCache = ArtifactStore


def run_kernel(
    kernel: Kernel,
    machine: MachineModel,
    variants: Sequence[Variant] = DEFAULT_VARIANTS,
    options: Optional[CompilerOptions] = None,
    n: int = 0,
    seed: int = 0,
    cache: Optional[CompileCache] = None,
    trace_dir: Optional[Union[str, Path]] = None,
) -> KernelResult:
    result = KernelResult(kernel)
    # One program serves every variant: the compiler never mutates its
    # input IR, so rebuilding (and re-elaborating) the kernel per
    # variant was pure waste. The scalar run doubles as the semantics
    # reference — its memory is kept on the result and compared against
    # by ``semantics_preserved`` instead of being re-simulated.
    program = kernel.build(n)
    for variant in variants:
        if trace_dir is not None:
            run, summary, diags = _traced_run(
                kernel, program, variant, machine, options, seed, trace_dir
            )
            result.runs[variant] = run
            result.trace_summaries[variant] = summary
            if diags:
                result.diagnostics[variant] = diags
            continue
        compiled = None
        key = ""
        if cache is not None:
            key = cache.key(program, variant, machine, options)
            compiled = cache.get(key)
        if compiled is None:
            compiled = compile_program(program, variant, machine, options)
            if cache is not None:
                cache.put(key, compiled)
        report, memory = Simulator(
            compiled.machine, engine=options.engine if options else None
        ).run(compiled.plan, seed=seed)
        result.runs[variant] = VariantRun(
            variant, report, compiled.stats, memory
        )
        diags = _result_diagnostics(compiled)
        if diags:
            result.diagnostics[variant] = diags
    return result


def _result_diagnostics(compiled: CompileResult) -> Tuple[Diagnostic, ...]:
    # getattr: cache entries pickled before the diagnostics API existed
    # have no such attribute and count as clean compiles.
    return tuple(getattr(compiled, "diagnostics", None) or ())


def _traced_run(
    kernel: Kernel,
    program,
    variant: Variant,
    machine: MachineModel,
    options: Optional[CompilerOptions],
    seed: int,
    trace_dir: Union[str, Path],
) -> Tuple[VariantRun, dict, Tuple[Diagnostic, ...]]:
    """Compile and simulate one variant with tracing enabled, writing
    the JSONL trace into ``trace_dir``. Deliberately bypasses the
    compile cache: a cache hit replays a stored plan without running
    the compiler, which would leave the trace with no compile-time
    decisions to attribute runtime costs to.
    """
    root = Path(trace_dir)
    root.mkdir(parents=True, exist_ok=True)
    TRACE.reset()
    TRACE.enable(kernel=kernel.name, variant=variant.value)
    try:
        compiled = compile_program(program, variant, machine, options)
        report, memory = Simulator(
            compiled.machine, engine=options.engine if options else None
        ).run(compiled.plan, seed=seed)
        fold_report(report)
        records = TRACE.records()
    finally:
        TRACE.disable()
        TRACE.reset()
    stem = f"{kernel.name}__{variant.value.replace('+', '_')}"
    (root / f"{stem}.jsonl").write_text(
        to_jsonl(records), encoding="utf-8"
    )
    run = VariantRun(variant, report, compiled.stats, memory)
    return run, summarize(records), _result_diagnostics(compiled)


def _run_kernel_task(payload):
    """Worker-process entry for the parallel suite runner.

    Kernels from the registry travel by name (their builders may be
    lambdas or locally-defined closures that do not pickle); ad-hoc
    kernels are pickled whole. The worker mirrors the parent's perf
    state and ships its measurements back as a snapshot for merging.

    A crash travels back as a formatted traceback instead of an
    exception: one bad kernel must not make ``pool.map`` discard every
    other kernel's result (and its traceback context) on the spot.
    Returns ``(name, result | None, perf_snapshot, failure | None)``.
    """
    (
        kernel_ref, machine, variants, options, n, cache_dir, perf_on,
        trace_dir,
    ) = payload
    kernel = (
        KERNELS[kernel_ref] if isinstance(kernel_ref, str) else kernel_ref
    )
    PERF.reset()
    if perf_on:
        PERF.enable()
    cache = CompileCache(cache_dir) if cache_dir else None
    try:
        result = run_kernel(
            kernel, machine, variants, options, n=n, cache=cache,
            trace_dir=trace_dir,
        )
    except Exception as exc:
        return kernel.name, None, None, format_failure(exc)
    snapshot = PERF.snapshot() if perf_on else None
    return kernel.name, result, snapshot, None


def run_suite(
    machine: MachineModel,
    kernels: Optional[Iterable[Kernel]] = None,
    variants: Sequence[Variant] = DEFAULT_VARIANTS,
    options: Optional[CompilerOptions] = None,
    n: int = 0,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    trace_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, KernelResult]:
    """Sweep the suite; ``jobs > 1`` fans kernels out over worker
    processes. Each kernel is an independent compile+simulate pipeline,
    so the fan-out is embarrassingly parallel; results are merged in
    input order, making the output identical to a sequential run
    regardless of worker scheduling. ``cache_dir`` enables the on-disk
    compile cache (shared by all workers).

    ``jobs`` is capped at ``os.cpu_count()``: oversubscribing a small
    box buys nothing but process spawn + pickle overhead (a 4-worker
    pool on a 1-core machine measured as a 0.73x *slowdown*), and when
    the cap leaves a single worker the pool is skipped entirely in
    favor of the serial path."""
    kernel_list = list(kernels or ALL_KERNELS)
    out: Dict[str, KernelResult] = {}
    failures: Dict[str, str] = {}
    jobs = min(jobs, os.cpu_count() or 1)
    if jobs <= 1:
        cache = CompileCache(cache_dir) if cache_dir else None
        for kernel in kernel_list:
            try:
                out[kernel.name] = run_kernel(
                    kernel, machine, variants, options, n=n, cache=cache,
                    trace_dir=trace_dir,
                )
            except Exception as exc:
                failures[kernel.name] = format_failure(exc)
        if failures:
            raise _suite_error(failures, out)
        return out

    payloads = [
        (
            kernel.name
            if KERNELS.get(kernel.name) is kernel
            else kernel,
            machine,
            tuple(variants),
            options,
            n,
            str(cache_dir) if cache_dir else None,
            PERF.enabled,
            str(trace_dir) if trace_dir else None,
        )
        for kernel in kernel_list
    ]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for name, result, snapshot, failure in pool.map(
            _run_kernel_task, payloads
        ):
            if failure is not None:
                failures[name] = failure
                continue
            out[name] = result
            if snapshot is not None:
                PERF.merge(snapshot)
    if failures:
        raise _suite_error(failures, out)
    return out


def _suite_error(
    failures: Dict[str, str], out: Dict[str, KernelResult]
) -> SuiteError:
    error = SuiteError(failures)
    # The kernels that *did* finish; lets callers report partial tables.
    error.results = out
    return error


def run_multicore(
    kernel: Kernel,
    machine: MachineModel,
    variant: Variant,
    cores: int,
    n: int = 0,
    options: Optional[CompilerOptions] = None,
) -> MulticorePoint:
    """One Figure 21 point: per-core slice simulation + sync overhead."""
    total_n = n or kernel.default_n
    slice_n = max(1, total_n // cores)
    sliced = run_kernel(
        kernel,
        machine,
        variants=(Variant.SCALAR, variant),
        options=options,
        n=slice_n,
    )
    scalar = parallel_cycles(
        sliced.cycles(Variant.SCALAR),
        cores,
        machine,
        sliced.runs[Variant.SCALAR].report.memory_operations,
    )
    optimized = parallel_cycles(
        sliced.cycles(variant),
        cores,
        machine,
        sliced.runs[variant].report.memory_operations,
    )
    return MulticorePoint(cores, scalar, optimized)


# -- presentation helpers (shared by the benchmark harnesses) -----------------------


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*["-" * w for w in widths])]
    lines.extend(fmt.format(*row) for row in rows)
    return "\n".join(lines)


def percent(x: float) -> str:
    return f"{100.0 * x:5.1f}%"
