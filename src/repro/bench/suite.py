"""The evaluation harness: run kernels through every compiler variant on
a simulated machine and collect the measurements the paper's figures
plot.

``run_kernel`` produces one benchmark's four-variant comparison;
``run_suite`` sweeps the whole Table 3 suite; ``run_multicore`` produces
one Figure 21 data point (P cores = each core runs a 1/P slice with a
private L1, plus a synchronization overhead shared by both versions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..compiler import (
    CompilerOptions,
    CompileStats,
    Variant,
    compile_program,
)
from ..vm import (
    ExecutionReport,
    MachineModel,
    Memory,
    MulticorePoint,
    Simulator,
    parallel_cycles,
    reduction,
)
from .kernels import ALL_KERNELS, KERNELS, Kernel

DEFAULT_VARIANTS: Tuple[Variant, ...] = (
    Variant.SCALAR,
    Variant.NATIVE,
    Variant.SLP,
    Variant.GLOBAL,
    Variant.GLOBAL_LAYOUT,
)


@dataclass
class VariantRun:
    variant: Variant
    report: ExecutionReport
    stats: CompileStats
    memory: Memory


@dataclass
class KernelResult:
    """One benchmark across variants, plus derived figure metrics."""

    kernel: Kernel
    runs: Dict[Variant, VariantRun] = field(default_factory=dict)

    def cycles(self, variant: Variant) -> float:
        return self.runs[variant].report.cycles

    def time_reduction(self, variant: Variant) -> float:
        """Execution-time reduction over scalar (Figures 16/19/20)."""
        return reduction(self.cycles(Variant.SCALAR), self.cycles(variant))

    def dyn_instr_reduction_over(
        self, better: Variant, worse: Variant
    ) -> float:
        """Figure 17 left axis: dynamic instructions (excl. pack/unpack)."""
        return reduction(
            self.runs[worse].report.dynamic_instructions,
            self.runs[better].report.dynamic_instructions,
        )

    def pack_unpack_reduction_over(
        self, better: Variant, worse: Variant
    ) -> float:
        """Figure 17 right axis: packing/unpacking overhead."""
        return reduction(
            self.runs[worse].report.pack_unpack_ops,
            self.runs[better].report.pack_unpack_ops,
        )

    def dyn_instr_elimination(self, variant: Variant) -> float:
        """Figure 18: dynamic instructions eliminated vs. scalar code."""
        return reduction(
            self.runs[Variant.SCALAR].report.total_instructions,
            self.runs[variant].report.total_instructions,
        )

    def semantics_preserved(self) -> bool:
        base = self.runs[Variant.SCALAR].memory
        return all(
            run.memory.state_equal(base)
            for variant, run in self.runs.items()
            if variant is not Variant.SCALAR
        )


def run_kernel(
    kernel: Kernel,
    machine: MachineModel,
    variants: Sequence[Variant] = DEFAULT_VARIANTS,
    options: Optional[CompilerOptions] = None,
    n: int = 0,
    seed: int = 0,
) -> KernelResult:
    result = KernelResult(kernel)
    program_factory = lambda: kernel.build(n)  # noqa: E731
    for variant in variants:
        compiled = compile_program(
            program_factory(), variant, machine, options
        )
        report, memory = Simulator(compiled.machine).run(
            compiled.plan, seed=seed
        )
        result.runs[variant] = VariantRun(
            variant, report, compiled.stats, memory
        )
    return result


def run_suite(
    machine: MachineModel,
    kernels: Optional[Iterable[Kernel]] = None,
    variants: Sequence[Variant] = DEFAULT_VARIANTS,
    options: Optional[CompilerOptions] = None,
    n: int = 0,
) -> Dict[str, KernelResult]:
    out: Dict[str, KernelResult] = {}
    for kernel in kernels or ALL_KERNELS:
        out[kernel.name] = run_kernel(
            kernel, machine, variants, options, n=n
        )
    return out


def run_multicore(
    kernel: Kernel,
    machine: MachineModel,
    variant: Variant,
    cores: int,
    n: int = 0,
    options: Optional[CompilerOptions] = None,
) -> MulticorePoint:
    """One Figure 21 point: per-core slice simulation + sync overhead."""
    total_n = n or kernel.default_n
    slice_n = max(1, total_n // cores)
    sliced = run_kernel(
        kernel,
        machine,
        variants=(Variant.SCALAR, variant),
        options=options,
        n=slice_n,
    )
    scalar = parallel_cycles(
        sliced.cycles(Variant.SCALAR),
        cores,
        machine,
        sliced.runs[Variant.SCALAR].report.memory_operations,
    )
    optimized = parallel_cycles(
        sliced.cycles(variant),
        cores,
        machine,
        sliced.runs[variant].report.memory_operations,
    )
    return MulticorePoint(cores, scalar, optimized)


# -- presentation helpers (shared by the benchmark harnesses) -----------------------


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*["-" * w for w in widths])]
    lines.extend(fmt.format(*row) for row in rows)
    return "\n".join(lines)


def percent(x: float) -> str:
    return f"{100.0 * x:5.1f}%"
