"""The perf-regression gate behind ``repro bench --check``.

The repo's benchmark artifacts (``benchmarks/results/BENCH_*.json``)
are committed; this module turns one of them — the deterministic suite
baseline ``BENCH_suite.json`` — into a *gate*: run the suite fresh,
compare metric by metric against the committed numbers, and emit a
machine-readable verdict.

Two metric kinds, two rules:

* **deterministic** — simulated cycle counts, dynamic instruction
  counts, pack/unpack op counts. The simulator is a deterministic cost
  model, so these are identical on every machine; any drift beyond a
  tight band (default 1%, which exists only to absorb intentional
  rounding in derived metrics) is a regression *or* an unacknowledged
  compiler change — either way, the gate should trip and force the
  author to look (and re-record the baseline if the change is
  intended).
* **wallclock** — compile seconds. Only comparable on the machine
  class that recorded the baseline (:func:`repro.bench.record.
  machine_fingerprint`); on any other machine these checks are
  reported ``skipped``, never failed, so CI can run the gate against a
  baseline recorded elsewhere. When fingerprints do match, a wide band
  (default 75%) absorbs load noise while still catching order-of-
  magnitude rot.

The verdict (``repro.bench.check/1``) lists every metric with its
baseline/current values, ratio, band, and status; the overall status
is ``fail`` iff any metric failed. ``--inject-slowdown`` multiplies
current deterministic cycle metrics before comparison — the CI
mutation step uses it to prove the gate actually catches a 2x
regression, the benchmark-suite analogue of mutation-testing your
tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .record import (
    fingerprints_match,
    machine_fingerprint,
    read_bench_json,
    write_bench_json,
)

#: Versioned schema of the verdict document.
CHECK_SCHEMA = "repro.bench.check/1"

#: Relative band for deterministic metrics (simulated cycles et al.).
DETERMINISTIC_TOLERANCE = 0.01

#: Relative band for wall-clock metrics on a matching machine.
WALLCLOCK_TOLERANCE = 0.75


def suite_metrics(results: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Flatten a ``run_suite`` result map into the two metric planes.

    Deterministic: per kernel+variant ``cycles``,
    ``dynamic_instructions``, and ``pack_unpack_ops``. Wallclock: total
    compile seconds across the sweep.
    """
    deterministic: Dict[str, float] = {}
    compile_seconds = 0.0
    for name in sorted(results):
        result = results[name]
        for variant in sorted(result.runs, key=lambda v: v.value):
            run = result.runs[variant]
            prefix = f"{name}.{variant.value}"
            deterministic[f"{prefix}.cycles"] = float(run.report.cycles)
            deterministic[f"{prefix}.dynamic_instructions"] = float(
                run.report.dynamic_instructions
            )
            deterministic[f"{prefix}.pack_unpack_ops"] = float(
                run.report.pack_unpack_ops
            )
            compile_seconds += float(run.stats.compile_seconds)
    return {
        "deterministic": deterministic,
        "wallclock": {"compile_seconds_total": compile_seconds},
    }


def write_suite_baseline(
    path: Path,
    results: Dict[str, Any],
    *,
    machine: str,
    n: int,
) -> Dict[str, Any]:
    """Record ``BENCH_suite.json`` — the committed gate baseline."""
    return write_bench_json(
        path,
        {
            "config": {"machine": machine, "n": n},
            "metrics": suite_metrics(results),
        },
    )


def _check_plane(
    kind: str,
    baseline: Dict[str, float],
    current: Dict[str, float],
    tolerance: float,
    comparable: bool,
    skip_reason: Optional[str],
) -> List[Dict[str, Any]]:
    checks: List[Dict[str, Any]] = []
    for name in sorted(set(baseline) | set(current)):
        entry: Dict[str, Any] = {
            "metric": name,
            "kind": kind,
            "baseline": baseline.get(name),
            "current": current.get(name),
            "tolerance": tolerance,
        }
        if not comparable:
            entry["status"] = "skipped"
            entry["reason"] = skip_reason
        elif name not in baseline:
            # New metrics are informational until the baseline is
            # re-recorded; a gate must not punish added coverage.
            entry["status"] = "skipped"
            entry["reason"] = "metric not in baseline"
        elif name not in current:
            entry["status"] = "fail"
            entry["reason"] = "metric missing from current run"
        else:
            base, cur = baseline[name], current[name]
            if base == 0:
                ratio = 1.0 if cur == 0 else float("inf")
            else:
                ratio = cur / base
            entry["ratio"] = round(ratio, 6) if ratio != float(
                "inf"
            ) else "inf"
            if abs(ratio - 1.0) <= tolerance:
                entry["status"] = "ok"
            else:
                entry["status"] = "fail"
                entry["reason"] = (
                    f"outside ±{tolerance:.0%} band"
                    f" ({'slower' if ratio > 1 else 'changed'})"
                )
        checks.append(entry)
    return checks


def check_suite(
    baseline_path: Path,
    results: Dict[str, Any],
    *,
    inject_slowdown: float = 1.0,
    config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Compare a fresh ``run_suite`` result map against a committed
    baseline; returns the verdict document. ``config`` (machine name,
    n) is cross-checked against the baseline's recorded config — a
    mismatch is an operator error, not a perf regression, and fails
    loudly before any metric comparison."""
    baseline = read_bench_json(baseline_path)
    recorded = baseline.get("config") or {}
    if config:
        mismatched = {
            key: (recorded.get(key), config[key])
            for key in config
            if recorded.get(key) != config[key]
        }
        if mismatched:
            raise ValueError(
                f"{baseline_path}: baseline recorded with"
                f" {recorded}, but this run used {config}"
                f" — rerun with matching flags or re-record"
            )
    base_fp = baseline["bench_meta"].get("fingerprint") or {}
    here_fp = machine_fingerprint()
    same_machine = fingerprints_match(base_fp, here_fp)

    current = suite_metrics(results)
    if inject_slowdown != 1.0:
        current["deterministic"] = {
            name: value * inject_slowdown
            if name.endswith(".cycles")
            else value
            for name, value in current["deterministic"].items()
        }

    base_metrics = baseline.get("metrics") or {}
    checks = _check_plane(
        "deterministic",
        base_metrics.get("deterministic") or {},
        current["deterministic"],
        DETERMINISTIC_TOLERANCE,
        comparable=True,
        skip_reason=None,
    )
    checks += _check_plane(
        "wallclock",
        base_metrics.get("wallclock") or {},
        current["wallclock"],
        WALLCLOCK_TOLERANCE,
        comparable=same_machine,
        skip_reason=(
            None
            if same_machine
            else f"machine fingerprint mismatch (baseline"
            f" {base_fp.get('id', '?')}, here {here_fp['id']})"
        ),
    )

    failed = [c for c in checks if c["status"] == "fail"]
    skipped = [c for c in checks if c["status"] == "skipped"]
    return {
        "schema": CHECK_SCHEMA,
        "baseline": str(baseline_path),
        "fingerprint_match": same_machine,
        "inject_slowdown": inject_slowdown,
        "counts": {
            "ok": len(checks) - len(failed) - len(skipped),
            "fail": len(failed),
            "skipped": len(skipped),
        },
        "status": "fail" if failed else "ok",
        "checks": checks,
    }


def render_verdict(verdict: Dict[str, Any], verbose: bool = False) -> str:
    """A terse human rendering: the failures (always), plus every check
    when ``verbose``."""
    lines = []
    counts = verdict["counts"]
    lines.append(
        f"bench check vs {verdict['baseline']}: {verdict['status']} "
        f"({counts['ok']} ok, {counts['fail']} fail, "
        f"{counts['skipped']} skipped"
        + (
            ""
            if verdict["fingerprint_match"]
            else "; wall-clock skipped: different machine"
        )
        + ")"
    )
    for check in verdict["checks"]:
        if check["status"] == "fail" or (
            verbose and check["status"] != "skipped"
        ):
            lines.append(
                f"  [{check['status']}] {check['metric']}: "
                f"baseline={check['baseline']} current={check['current']}"
                f" ratio={check.get('ratio', '-')}"
                + (
                    f" ({check['reason']})"
                    if check.get("reason")
                    else ""
                )
            )
    return "\n".join(lines)


def run_check(
    baseline_path: Path,
    *,
    machine_name: str = "intel",
    n: int = 64,
    variants: Optional[Sequence[Any]] = None,
    inject_slowdown: float = 1.0,
    out_path: Optional[Path] = None,
) -> Dict[str, Any]:
    """Run the suite fresh and gate it against ``baseline_path``;
    optionally write the verdict JSON. The entry point both
    ``repro bench --check`` and ``benchmarks/check_regressions.py``
    share."""
    from ..vm import MACHINES
    from .suite import run_suite

    kwargs: Dict[str, Any] = {"n": n}
    if variants is not None:
        kwargs["variants"] = variants
    results = run_suite(MACHINES[machine_name](), **kwargs)
    verdict = check_suite(
        baseline_path,
        results,
        inject_slowdown=inject_slowdown,
        config={"machine": machine_name, "n": n},
    )
    if out_path is not None:
        Path(out_path).write_text(
            json.dumps(verdict, indent=2, sort_keys=True) + "\n"
        )
    return verdict


__all__ = [
    "CHECK_SCHEMA",
    "DETERMINISTIC_TOLERANCE",
    "WALLCLOCK_TOLERANCE",
    "check_suite",
    "render_verdict",
    "run_check",
    "suite_metrics",
    "write_suite_baseline",
]
