"""The optimality-gap plane: greedy vs provably optimal packing.

goSLP (PAPERS.md) turns SLP pairing into an exactly solvable problem;
with the ``optimal`` grouping engine (:mod:`repro.slp.optimal`) the
greedy heuristic's quality becomes a *measured quantity*: for every
kernel x unroll factor this module reports

* **score** — the round-0 (pairing) whole-selection packing objective
  (:meth:`repro.slp.grouping.BasicGrouping.selection_objective`) of the
  incremental engine vs the optimal engine, summed over the program's
  blocks, plus the gap ``optimal - greedy``. The optimal engine seeds
  its search with the greedy result, so the score gap is ``>= 0`` by
  construction; when the exact search completes within budget the gap
  is exact, otherwise the engine fell back and the gap reads 0 with
  ``proven`` false.
* **cycles** — end-to-end simulated cycles of the GLOBAL variant
  compiled with each grouping engine. The cycle gap is
  ``greedy - optimal`` (positive: the optimal packing also runs
  faster); unlike the score it is *not* sign-guaranteed — a better
  packing score can lose cycles downstream (scheduling, layout), which
  is precisely what the benchmark exists to expose.
* **proven** — 1.0 when every grouping round of every block finished
  its exact search within budget.

``check_optimality`` gates the committed ``BENCH_optimality.json``
(the PR-7 regression-gate pattern): it recomputes the deterministic
score plane with the baseline's recorded config and fails on any drift
beyond the deterministic tolerance — so a heuristic tweak that widens
the greedy-vs-optimal gap cannot land silently.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis import DependenceGraph
from ..ir import BasicBlock
from .kernels import ALL_KERNELS, KERNELS
from .record import read_bench_json, write_bench_json
from .regress import CHECK_SCHEMA, DETERMINISTIC_TOLERANCE, _check_plane

#: The unroll factors of the committed baseline grid.
DEFAULT_UNROLL_FACTORS = (2, 4, 8)
#: Baseline problem size (grouping cost is independent of the loop trip
#: count; this only sizes the simulated-cycles plane).
DEFAULT_N = 64


def _program_blocks(pre) -> List[BasicBlock]:
    """The blocks phase 1 of the compiler optimizes: one per program
    body item, the innermost body for loop nests (outer-level blocks
    are compiled scalar — see ``repro.compiler``)."""
    blocks = []
    for item in pre.body:
        if isinstance(item, BasicBlock):
            blocks.append(item)
        else:
            loop = item
            while loop.inner is not None:
                loop = loop.inner
            blocks.append(loop.body)
    return blocks


def pairing_objectives(
    program,
    datapath_bits: int,
    engine: str,
    node_budget: Optional[int] = None,
) -> Tuple[Fraction, bool, int]:
    """Sum of the round-0 pairing objectives over a (preprocessed)
    program's blocks for one grouping engine; returns
    ``(objective, all_proven, nodes_explored)``."""
    from ..layout import default_scalar_layout
    from ..slp.grouping import BasicGrouping, PenaltyContext
    from ..slp.model import GroupNode

    context = PenaltyContext(
        scalar_slots=PenaltyContext.from_arenas(
            default_scalar_layout(program)
        )
    )
    options = {"node_budget": node_budget} if node_budget else None
    total = Fraction(0)
    proven = True
    nodes = 0
    for block in _program_blocks(program):
        deps = DependenceGraph(block)
        grouping = BasicGrouping(
            [GroupNode.of_statement(s) for s in block],
            deps,
            datapath_bits,
            lambda name: program.arrays[name],
            context,
            "cost-aware",
            engine,
            engine_options=options,
        )
        _, _, trace = grouping.run()
        total += trace.objective or Fraction(0)
        proven = proven and (
            trace.proven_optimal or engine != "optimal"
        )
        nodes += trace.nodes_explored
    return total, proven, nodes


def optimality_metrics(
    *,
    machine_name: str = "intel",
    n: int = DEFAULT_N,
    unroll_factors: Sequence[int] = DEFAULT_UNROLL_FACTORS,
    kernels: Optional[Sequence[str]] = None,
    node_budget: Optional[int] = None,
    include_cycles: bool = True,
) -> Dict[str, Dict[str, float]]:
    """The metric planes (see module docstring) for a kernel grid."""
    from ..compiler import CompilerOptions, Variant, compile_program
    from ..transform import if_convert_program, unroll_program
    from ..vm import MACHINES, Simulator

    machine = MACHINES[machine_name]()
    datapath = machine.datapath_bits
    selected = (
        [KERNELS[name] for name in kernels]
        if kernels is not None
        else ALL_KERNELS
    )
    score: Dict[str, float] = {}
    cycles: Dict[str, float] = {}
    proven_plane: Dict[str, float] = {}
    for kernel in selected:
        program = kernel.build(n)
        # Branchy kernels carry if/else regions; grouping (like the
        # compiler pipeline) only ever sees the if-converted form.
        flattened = if_convert_program(program)
        for factor in unroll_factors:
            key = f"{kernel.name}.u{factor}"
            pre = unroll_program(flattened, datapath, factor)
            greedy_score, _, _ = pairing_objectives(
                pre, datapath, "incremental"
            )
            optimal_score, proven, _ = pairing_objectives(
                pre, datapath, "optimal", node_budget
            )
            score[f"{key}.greedy"] = float(greedy_score)
            score[f"{key}.optimal"] = float(optimal_score)
            score[f"{key}.gap"] = float(optimal_score - greedy_score)
            proven_plane[key] = 1.0 if proven else 0.0
            if not include_cycles:
                continue
            run_cycles = {}
            for engine in ("incremental", "optimal"):
                options = CompilerOptions(
                    grouping_engine=engine,
                    unroll_factor=factor,
                    optimal_node_budget=node_budget,
                    on_error="raise",
                )
                result = compile_program(
                    program, Variant.GLOBAL, machine, options
                )
                report, _ = Simulator(machine, engine="batched").run(
                    result.plan
                )
                run_cycles[engine] = float(report.cycles)
            cycles[f"{key}.greedy"] = run_cycles["incremental"]
            cycles[f"{key}.optimal"] = run_cycles["optimal"]
            cycles[f"{key}.gap"] = (
                run_cycles["incremental"] - run_cycles["optimal"]
            )
    metrics: Dict[str, Dict[str, float]] = {
        "score": score,
        "proven": proven_plane,
    }
    if include_cycles:
        metrics["cycles"] = cycles
    return metrics


def write_optimality_baseline(
    path: Path,
    metrics: Dict[str, Dict[str, float]],
    *,
    machine: str,
    n: int,
    unroll_factors: Sequence[int],
    node_budget: Optional[int] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """Record ``BENCH_optimality.json`` — the committed gate baseline.
    ``extra`` keys (e.g. a human-readable summary) ride along in the
    artifact; the checker only reads ``config`` and ``metrics``."""
    return write_bench_json(
        path,
        {
            "config": {
                "machine": machine,
                "n": n,
                "unroll_factors": list(unroll_factors),
                "node_budget": node_budget,
            },
            "metrics": metrics,
            **extra,
        },
    )


def check_optimality(
    baseline_path: Path,
    *,
    out_path: Optional[Path] = None,
) -> Dict[str, Any]:
    """Gate the committed optimality baseline: recompute the
    deterministic score plane with the baseline's recorded config and
    compare metric by metric.  The simulated-cycles plane is covered by
    the main suite gate; recomputing scores alone keeps the check fast
    and exactly reproducible on any machine."""
    baseline = read_bench_json(baseline_path)
    config = baseline.get("config") or {}
    base_metrics = baseline.get("metrics") or {}
    current = optimality_metrics(
        machine_name=config.get("machine", "intel"),
        n=int(config.get("n", DEFAULT_N)),
        unroll_factors=tuple(
            config.get("unroll_factors", DEFAULT_UNROLL_FACTORS)
        ),
        node_budget=config.get("node_budget"),
        include_cycles=False,
    )
    checks = _check_plane(
        "optimality-score",
        base_metrics.get("score") or {},
        current["score"],
        DETERMINISTIC_TOLERANCE,
        comparable=True,
        skip_reason=None,
    )
    checks += _check_plane(
        "optimality-proven",
        base_metrics.get("proven") or {},
        current["proven"],
        DETERMINISTIC_TOLERANCE,
        comparable=True,
        skip_reason=None,
    )
    failed = [c for c in checks if c["status"] == "fail"]
    skipped = [c for c in checks if c["status"] == "skipped"]
    verdict = {
        "schema": CHECK_SCHEMA,
        "baseline": str(baseline_path),
        "fingerprint_match": True,  # score plane is machine-independent
        "inject_slowdown": 1.0,
        "counts": {
            "ok": len(checks) - len(failed) - len(skipped),
            "fail": len(failed),
            "skipped": len(skipped),
        },
        "status": "fail" if failed else "ok",
        "checks": checks,
    }
    if out_path is not None:
        Path(out_path).write_text(
            json.dumps(verdict, indent=2, sort_keys=True) + "\n"
        )
    return verdict


__all__ = [
    "DEFAULT_N",
    "DEFAULT_UNROLL_FACTORS",
    "check_optimality",
    "optimality_metrics",
    "pairing_objectives",
    "write_optimality_baseline",
]
