"""The predication plane: branchy kernels through if-conversion.

The ``branchy`` kernel family (:mod:`repro.bench.kernels`) carries
if/else regions that :mod:`repro.transform.if_convert` must flatten
into predicated select blocks before any SLP stage runs. This module
turns that path into measured, gateable quantities — for every branchy
kernel it reports

* **cycles** — end-to-end simulated cycles of the SCALAR baseline and
  the GLOBAL variant, plus their ratio (``speedup``: > 1 means the
  if-converted superword code beats the if-converted scalar code).
* **vector** — ``vselect_ops``, the static count of lane-parallel
  ``select`` ops (``vselect``/blend) in the GLOBAL plan, and
  ``vectorized``/``beats_scalar`` flags. A branchy kernel that stops
  emitting vselects, or stops beating scalar, changed behaviour — the
  gate should trip.

Every metric is deterministic (the simulator is a cost model), so
``check_predication`` — wired into ``repro bench --check`` whenever a
committed ``BENCH_predication.json`` sits next to the suite baseline —
recomputes the full grid on any machine and fails on drift beyond the
deterministic tolerance.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from .kernels import BRANCHY_KERNELS, KERNELS
from .record import read_bench_json, write_bench_json
from .regress import CHECK_SCHEMA, DETERMINISTIC_TOLERANCE, _check_plane

#: Baseline problem size (matches the suite baseline's default).
DEFAULT_N = 64
#: The committed grid: the whole branchy family.
DEFAULT_KERNELS = tuple(k.name for k in BRANCHY_KERNELS)


def count_vselects(plan) -> int:
    """Static count of lane-parallel ``select`` ops in a plan."""
    from ..vm.codegen import CompiledLoop, CompiledStraight
    from ..vm.isa import VOp

    count = 0

    def visit(instrs) -> None:
        nonlocal count
        for instr in instrs:
            if isinstance(instr, VOp) and instr.op == "select":
                count += 1

    def walk(unit) -> None:
        if isinstance(unit, CompiledStraight):
            visit(unit.instructions)
        elif isinstance(unit, CompiledLoop):
            visit(unit.preheader)
            visit(unit.body)
            if unit.inner is not None:
                walk(unit.inner)

    for unit in plan.units:
        walk(unit)
    return count


def predication_metrics(
    *,
    machine_name: str = "intel",
    n: int = DEFAULT_N,
    kernels: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """The metric planes (see module docstring) for the branchy grid."""
    from ..compiler import CompilerOptions, Variant, compile_program
    from ..vm import MACHINES, Simulator

    machine = MACHINES[machine_name]()
    selected = [KERNELS[name] for name in (kernels or DEFAULT_KERNELS)]
    cycles: Dict[str, float] = {}
    vector: Dict[str, float] = {}
    for kernel in selected:
        program = kernel.build(n)
        options = CompilerOptions(on_error="raise")
        run_cycles: Dict[Any, float] = {}
        plans: Dict[Any, Any] = {}
        for variant in (Variant.SCALAR, Variant.GLOBAL):
            result = compile_program(program, variant, machine, options)
            report, _ = Simulator(machine, engine="batched").run(
                result.plan
            )
            run_cycles[variant] = float(report.cycles)
            plans[variant] = result.plan
        scalar_cycles = run_cycles[Variant.SCALAR]
        global_cycles = run_cycles[Variant.GLOBAL]
        vselects = count_vselects(plans[Variant.GLOBAL])
        cycles[f"{kernel.name}.scalar"] = scalar_cycles
        cycles[f"{kernel.name}.global"] = global_cycles
        cycles[f"{kernel.name}.speedup"] = (
            round(scalar_cycles / global_cycles, 6)
            if global_cycles
            else 0.0
        )
        vector[f"{kernel.name}.vselect_ops"] = float(vselects)
        vector[f"{kernel.name}.vectorized"] = float(vselects > 0)
        vector[f"{kernel.name}.beats_scalar"] = float(
            global_cycles < scalar_cycles
        )
    return {"cycles": cycles, "vector": vector}


def write_predication_baseline(
    path: Path,
    metrics: Dict[str, Dict[str, float]],
    *,
    machine: str,
    n: int,
    kernels: Sequence[str] = DEFAULT_KERNELS,
    **extra: Any,
) -> Dict[str, Any]:
    """Record ``BENCH_predication.json`` — the committed gate baseline.
    ``extra`` keys ride along in the artifact; the checker only reads
    ``config`` and ``metrics``."""
    return write_bench_json(
        path,
        {
            "config": {
                "machine": machine,
                "n": n,
                "kernels": list(kernels),
            },
            "metrics": metrics,
            **extra,
        },
    )


def check_predication(
    baseline_path: Path,
    *,
    out_path: Optional[Path] = None,
) -> Dict[str, Any]:
    """Gate the committed predication baseline: recompute both planes
    (all deterministic) with the baseline's recorded config and compare
    metric by metric."""
    baseline = read_bench_json(baseline_path)
    config = baseline.get("config") or {}
    base_metrics = baseline.get("metrics") or {}
    current = predication_metrics(
        machine_name=config.get("machine", "intel"),
        n=int(config.get("n", DEFAULT_N)),
        kernels=config.get("kernels") or None,
    )
    checks = _check_plane(
        "predication-cycles",
        base_metrics.get("cycles") or {},
        current["cycles"],
        DETERMINISTIC_TOLERANCE,
        comparable=True,
        skip_reason=None,
    )
    checks += _check_plane(
        "predication-vector",
        base_metrics.get("vector") or {},
        current["vector"],
        DETERMINISTIC_TOLERANCE,
        comparable=True,
        skip_reason=None,
    )
    failed = [c for c in checks if c["status"] == "fail"]
    skipped = [c for c in checks if c["status"] == "skipped"]
    verdict = {
        "schema": CHECK_SCHEMA,
        "baseline": str(baseline_path),
        "fingerprint_match": True,  # every plane is machine-independent
        "inject_slowdown": 1.0,
        "counts": {
            "ok": len(checks) - len(failed) - len(skipped),
            "fail": len(failed),
            "skipped": len(skipped),
        },
        "status": "fail" if failed else "ok",
        "checks": checks,
    }
    if out_path is not None:
        Path(out_path).write_text(
            json.dumps(verdict, indent=2, sort_keys=True) + "\n"
        )
    return verdict


__all__ = [
    "DEFAULT_KERNELS",
    "DEFAULT_N",
    "check_predication",
    "count_vselects",
    "predication_metrics",
    "write_predication_baseline",
]
