"""Shared recording helper for machine-readable benchmark artifacts.

Every ``benchmarks/results/BENCH_*.json`` writer goes through
:func:`write_bench_json`, which stamps a ``bench_meta`` block onto the
payload::

    "bench_meta": {
        "schema": "repro.bench/1",
        "fingerprint": {"id": "9b2f...", "system": "Linux", ...}
    }

The fingerprint identifies the *recording machine class* — platform,
architecture, Python major.minor, core count. The regression checker
(:mod:`repro.bench.regress`) uses it to decide which metrics are
comparable: deterministic metrics (simulated cycle counts, instruction
counts) compare everywhere; wall-clock metrics only compare when the
fingerprint matches, and are reported as *skipped* — not failed — when
it does not. Committed baselines therefore stay useful in CI even
though CI hardware differs from the machine that recorded them.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Dict, Union

#: Versioned schema of the ``bench_meta`` block.
BENCH_SCHEMA = "repro.bench/1"


def machine_fingerprint() -> Dict[str, Any]:
    """A stable description of the recording machine class.

    Deliberately coarse: it must be identical across runs on one
    machine (no hostnames, no boot IDs) yet distinguish machines whose
    wall-clock numbers are not comparable.
    """
    facets = {
        "system": platform.system(),
        "machine": platform.machine(),
        "python": f"{sys.version_info.major}.{sys.version_info.minor}",
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 0,
    }
    blob = "\x00".join(f"{k}={facets[k]}" for k in sorted(facets))
    facets["id"] = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]
    return facets


def fingerprints_match(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """Do two fingerprints describe the same machine class?"""
    return bool(a and b and a.get("id") and a.get("id") == b.get("id"))


def write_bench_json(
    path: Union[str, Path], payload: Dict[str, Any]
) -> Dict[str, Any]:
    """Stamp ``bench_meta`` onto ``payload`` and write it as sorted,
    indented JSON (the committed-artifact diff format). Returns the
    stamped payload."""
    stamped = dict(payload)
    stamped["bench_meta"] = {
        "schema": BENCH_SCHEMA,
        "fingerprint": machine_fingerprint(),
    }
    Path(path).write_text(
        json.dumps(stamped, indent=2, sort_keys=True) + "\n"
    )
    return stamped


def read_bench_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a benchmark artifact; raises ``ValueError`` when the file
    predates (or mangles) the ``bench_meta`` schema — the checker must
    never silently compare unversioned numbers."""
    data = json.loads(Path(path).read_text())
    meta = data.get("bench_meta")
    if not isinstance(meta, dict) or meta.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: missing or unsupported bench_meta schema "
            f"(expected {BENCH_SCHEMA!r}); re-record the baseline"
        )
    return data


__all__ = [
    "BENCH_SCHEMA",
    "fingerprints_match",
    "machine_fingerprint",
    "read_bench_json",
    "write_bench_json",
]
