"""The 16-benchmark workload suite (Table 3).

The paper evaluates on the C/C++ floating-point half of SPEC2006 plus
six NAS benchmarks. We cannot ship those sources; instead each entry
here generates a kernel that reproduces the *dominant inner-loop
data-access and reuse pattern* of the corresponding application — which
is all the SLP stages are sensitive to (statement mix, isomorphism
structure, operand reuse, stride/alignment of the memory references).
DESIGN.md documents this substitution.

Patterns covered across the suite: unit-stride streaming, unaligned
stencils, interleaved (re/im) data, banded/strided accesses, per-point
scalar temporaries with cross-statement reuse, reductions kept scalar,
and heavy-latency ops (sqrt/div) — so the four variants separate the
same way the paper's Figure 16 categories do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..ir import FLOAT64, Program, ProgramBuilder


@dataclass(frozen=True)
class Kernel:
    """One benchmark: a name from Table 3, its suite, the paper's
    description, and a size-parameterized program generator."""

    name: str
    suite: str
    description: str
    builder: Callable[[int], Program]
    default_n: int = 256

    def build(self, n: int = 0) -> Program:
        return self.builder(n or self.default_n)


# -- SPEC2006 ---------------------------------------------------------------------


def _cactusadm(n: int) -> Program:
    """Einstein evolution equations: 3-point stencils with shared
    neighbour temporaries (unaligned unit-stride reuse)."""
    b = ProgramBuilder("cactusADM")
    U = b.array("U", (16 * n + 16,), FLOAT64)
    V = b.array("V", (16 * n + 16,), FLOAT64)
    W = b.array("W", (16 * n + 16,), FLOAT64)
    tl, tr, lap = b.scalars("tl tr lap", FLOAT64)
    with b.loop("i", 1, n + 1) as i:
        b.assign(tl, U[i - 1] + U[i])
        b.assign(tr, U[i] + U[i + 1])
        b.assign(lap, tr - tl)
        b.assign(V[i], V[i] + lap * 0.5)
        b.assign(W[i], W[i] + lap * 0.25)
    return b.build()


def _soplex(n: int) -> Program:
    """Simplex pivot row update: pure unit-stride streaming axpy."""
    b = ProgramBuilder("soplex")
    Y = b.array("Y", (16 * n,), FLOAT64)
    M = b.array("M", (16 * n,), FLOAT64)
    p = b.scalar("p", FLOAT64)
    with b.loop("i", 0, n) as i:
        b.assign(Y[i], Y[i] - p * M[i])
    return b.build()


def _lbm(n: int) -> Program:
    """Lattice Boltzmann stream/collide: nine distribution values per
    cell at stride 9 — the strided gather pattern layout replication
    turns into contiguous loads."""
    b = ProgramBuilder("lbm")
    F = b.array("F", (9 * (4 * n + 4),), FLOAT64)
    G = b.array("G", (9 * (4 * n + 4),), FLOAT64)
    RHO = b.array("RHO", (4 * n + 4,), FLOAT64)
    f0, f1, f2, f3, rho = b.scalars("f0 f1 f2 f3 rho", FLOAT64)
    omega = b.scalar("omega", FLOAT64)
    with b.loop("i", 0, n) as i:
        b.assign(f0, F[9 * i] + G[9 * i])
        b.assign(f1, F[9 * i + 1] + G[9 * i + 1])
        b.assign(f2, F[9 * i + 2] + G[9 * i + 2])
        b.assign(f3, F[9 * i + 3] + G[9 * i + 3])
        b.assign(rho, (f0 + f1) + (f2 + f3))
        b.assign(RHO[i], rho * omega)
    return b.build()


def _milc(n: int) -> Program:
    """SU(3) lattice QCD: complex multiply reading interleaved re/im
    operands and writing planar outputs. The adjacent re/im loads seed
    the greedy packer into within-point pairs, so its product groups
    must gather their scalar operands; the holistic framework pairs the
    loads across points instead, turning every product operand into a
    direct register reuse. The stride-2 input accesses are also a
    de-interleaving layout candidate (Section 5.2)."""
    b = ProgramBuilder("milc")
    A = b.array("A", (8 * n + 8,), FLOAT64)   # interleaved re/im
    B = b.array("B", (8 * n + 8,), FLOAT64)
    CR = b.array("CR", (4 * n + 4,), FLOAT64)  # planar outputs
    CI = b.array("CI", (4 * n + 4,), FLOAT64)
    ar, ai, br, bi = b.scalars("ar ai br bi", FLOAT64)
    with b.loop("i", 0, n) as i:
        b.assign(ar, A[2 * i])
        b.assign(ai, A[2 * i + 1])
        b.assign(br, B[2 * i])
        b.assign(bi, B[2 * i + 1])
        b.assign(CR[i], ar * br - ai * bi)
        b.assign(CI[i], ar * bi + ai * br)
    return b.build()


def _povray(n: int) -> Program:
    """Ray/normal dot products: per-ray scalar temporaries reused across
    statements — the scalar-superword layout case (Figure 13)."""
    b = ProgramBuilder("povray")
    DX = b.array("DX", (4 * n,), FLOAT64)
    DY = b.array("DY", (4 * n,), FLOAT64)
    NX = b.array("NX", (4 * n,), FLOAT64)
    NY = b.array("NY", (4 * n,), FLOAT64)
    OUT = b.array("OUT", (4 * n,), FLOAT64)
    dx, dy, px, py = b.scalars("dx dy px py", FLOAT64)
    with b.loop("i", 0, n) as i:
        b.assign(dx, DX[i] * NX[i])
        b.assign(dy, DY[i] * NY[i])
        b.assign(px, dx + dy)
        b.assign(py, dx - dy)
        b.assign(OUT[i], px * py)
    return b.build()


def _gromacs(n: int) -> Program:
    """Nonbonded force inner loop: distance + reciprocal sqrt per pair
    (latency-heavy ops where SIMD work dominates pack cost)."""
    b = ProgramBuilder("gromacs")
    X = b.array("X", (4 * n,), FLOAT64)
    Y = b.array("Y", (4 * n,), FLOAT64)
    Fbuf = b.array("Fbuf", (4 * n,), FLOAT64)
    with b.loop("i", 0, n) as i:
        b.assign(Fbuf[i], (X[i] * X[i] + Y[i] * Y[i]).sqrt())
    return b.build()


def _calculix(n: int) -> Program:
    """FE stiffness apply: 4-wide dense blocks at stride 4 with a
    shared per-element coefficient."""
    b = ProgramBuilder("calculix")
    K = b.array("K", (4 * (4 * n + 4),), FLOAT64)
    U = b.array("U", (4 * (4 * n + 4),), FLOAT64)
    R = b.array("R", (4 * (4 * n + 4),), FLOAT64)
    with b.loop("i", 0, n) as i:
        b.assign(R[4 * i], R[4 * i] + K[4 * i] * U[4 * i])
        b.assign(R[4 * i + 1], R[4 * i + 1] + K[4 * i + 1] * U[4 * i + 1])
        b.assign(R[4 * i + 2], R[4 * i + 2] + K[4 * i + 2] * U[4 * i + 2])
        b.assign(R[4 * i + 3], R[4 * i + 3] + K[4 * i + 3] * U[4 * i + 3])
    return b.build()


def _dealii(n: int) -> Program:
    """Jacobi-style smoothing with neighbour-sum temporaries: the
    adjacent neighbour loads seed the greedy packer within one point,
    while the residual temporary's reuse wants the shifted cross-point
    pairing — a milder instance of the cactusADM/Figure-15 effect."""
    b = ProgramBuilder("dealII")
    A = b.array("A", (4 * n + 8,), FLOAT64)
    Bv = b.array("Bv", (4 * n + 8,), FLOAT64)
    Cv = b.array("Cv", (4 * n + 8,), FLOAT64)
    lo, hi, res = b.scalars("lo hi res", FLOAT64)
    with b.loop("i", 1, n + 1) as i:
        b.assign(lo, A[i - 1] + A[i])
        b.assign(hi, A[i] + A[i + 1])
        b.assign(res, hi - lo)
        b.assign(Cv[i], Bv[i] + res * 0.5)
    return b.build()


def _wrf(n: int) -> Program:
    """Multi-field time-step update: several independent contiguous
    streams advanced by the same dt."""
    b = ProgramBuilder("wrf")
    U = b.array("U", (4 * n,), FLOAT64)
    V = b.array("V", (4 * n,), FLOAT64)
    FU = b.array("FU", (4 * n,), FLOAT64)
    FV = b.array("FV", (4 * n,), FLOAT64)
    dt = b.scalar("dt", FLOAT64)
    with b.loop("i", 0, n) as i:
        b.assign(U[i], U[i] + dt * FU[i])
        b.assign(V[i], V[i] + dt * FV[i])
    return b.build()


def _namd(n: int) -> Program:
    """Pairwise electrostatics over a padded neighbour structure: *no*
    reference pair in the body is memory-adjacent, so the greedy SLP
    baseline never finds a seed and leaves the loop scalar — while the
    holistic framework's reuse analysis still extracts superword
    statements (the paper's core criticism of seed-driven packing,
    Section 2). Strided accesses also make it a strong layout
    candidate."""
    b = ProgramBuilder("namd")
    Q = b.array("Q", (8 * n + 16,), FLOAT64)   # padded charge records
    EW = b.array("EW", (16 * n + 16,), FLOAT64)  # Ewald table
    F = b.array("F", (8 * n + 16,), FLOAT64)   # stride-4 force slots
    qa, qb, ea, eb, ga, gb = b.scalars("qa qb ea eb ga gb", FLOAT64)
    c1, c2 = b.scalars("c1 c2", FLOAT64)
    with b.loop("i", 1, n + 1) as i:
        b.assign(qa, Q[4 * i])                  # stride-4 record fields
        b.assign(qb, Q[4 * i + 2])
        b.assign(ea, qa * EW[8 * i])
        b.assign(ga, c1 * EW[8 * i - 2])
        b.assign(eb, qb * EW[8 * i + 4])
        b.assign(gb, c2 * EW[8 * i + 2])
        b.assign(F[4 * i], eb + qa * ea)        # reuses <eb,ga>,
        b.assign(F[4 * i + 2], ga + c2 * gb)    # <ea,gb>, <qa,c2>
    return b.build()


# -- NAS --------------------------------------------------------------------------


def _ua(n: int) -> Program:
    """Unstructured adaptive mesh: per-element records are padded to
    four slots, so *no* reference pair is memory-adjacent — the greedy
    baseline finds no seed and stays scalar, while the holistic
    framework still groups through the temporaries' reuse, and the
    layout stage linearizes the strided record fields."""
    b = ProgramBuilder("ua")
    E = b.array("E", (16 * n + 16,), FLOAT64)  # padded element records
    P = b.array("P", (4 * n + 4,), FLOAT64)
    lo, hi = b.scalars("lo hi", FLOAT64)
    with b.loop("i", 0, n) as i:
        b.assign(lo, E[4 * i] * 0.75)
        b.assign(hi, E[4 * i + 2] * 0.25)
        b.assign(P[i], lo + hi)
    return b.build()


def _ft(n: int) -> Program:
    """Radix-2 butterfly over interleaved complex data. The sum outputs
    consume the input superword <X[2i], X[2i+1]> directly, while the
    difference outputs consume it *reversed* — an indirect superword
    reuse the holistic scheduler serves with one register permutation
    and the greedy baseline re-gathers from memory (Section 4.3)."""
    b = ProgramBuilder("ft")
    X = b.array("X", (4 * n + 8,), FLOAT64)    # interleaved re/im
    WR = b.array("WR", (2 * n + 4,), FLOAT64)
    WI = b.array("WI", (2 * n + 4,), FLOAT64)
    YP = b.array("YP", (4 * n + 8,), FLOAT64)  # x + t
    YM = b.array("YM", (4 * n + 8,), FLOAT64)  # reversed(x) - reversed(t)
    tr, ti = b.scalars("tr ti", FLOAT64)
    with b.loop("i", 0, n) as i:
        b.assign(tr, X[2 * i] * WR[i] - X[2 * i + 1] * WI[i])
        b.assign(ti, X[2 * i] * WI[i] + X[2 * i + 1] * WR[i])
        b.assign(YP[2 * i], X[2 * i] + tr)
        b.assign(YP[2 * i + 1], X[2 * i + 1] + ti)
        b.assign(YM[2 * i], X[2 * i + 1] - ti)
        b.assign(YM[2 * i + 1], X[2 * i] - tr)
    return b.build()


def _bt(n: int) -> Program:
    """Block-tridiagonal solve: 5-wide bands at stride 5 (strided
    gathers that layout replication linearizes)."""
    b = ProgramBuilder("bt")
    D = b.array("D", (5 * (4 * n + 4),), FLOAT64)
    Xv = b.array("Xv", (4 * n + 4,), FLOAT64)
    Yv = b.array("Yv", (4 * n + 4,), FLOAT64)
    with b.loop("i", 0, n) as i:
        b.assign(
            Yv[i],
            (D[5 * i] * Xv[i] + D[5 * i + 1] * Xv[i + 1])
            + (D[5 * i + 2] * Xv[i + 2] + D[5 * i + 3] * Xv[i + 3]),
        )
    return b.build()


def _sp(n: int) -> Program:
    """Scalar-pentadiagonal sweep: adjacent diagonal factors mislead the
    greedy packer into a within-point pair, while the elimination
    temporary's cross-point reuse (caught by the global analysis) wants
    the shifted pairing — the cactusADM/Figure-15 effect on a solver
    sweep."""
    b = ProgramBuilder("sp")
    P = b.array("P", (4 * n + 8,), FLOAT64)
    O1 = b.array("O1", (4 * n + 8,), FLOAT64)
    O2 = b.array("O2", (4 * n + 8,), FLOAT64)
    fl, fr, mid = b.scalars("fl fr mid", FLOAT64)
    c1 = b.scalar("c1", FLOAT64)
    with b.loop("i", 1, n + 1) as i:
        b.assign(fl, P[i] * c1)       # adjacent pair: misleading seed
        b.assign(fr, P[i + 1] * c1)
        b.assign(mid, fr - fl)
        b.assign(O1[i], O1[i] + mid * 0.5)
        b.assign(O2[i], O2[i] + mid * 0.25)
    return b.build()


def _mg(n: int) -> Program:
    """Multigrid restriction: fine-to-coarse stride-2 stencil."""
    b = ProgramBuilder("mg")
    U = b.array("U", (8 * n + 8,), FLOAT64)
    R = b.array("R", (4 * n + 4,), FLOAT64)
    with b.loop("i", 0, n) as i:
        b.assign(
            R[i], (U[2 * i] + U[2 * i + 1] * 2.0 + U[2 * i + 2]) * 0.25
        )
    return b.build()


def _cg(n: int) -> Program:
    """Conjugate gradient vector update: contiguous axpy pair."""
    b = ProgramBuilder("cg")
    P = b.array("P", (4 * n,), FLOAT64)
    Q = b.array("Q", (4 * n,), FLOAT64)
    Z = b.array("Z", (4 * n,), FLOAT64)
    alpha = b.scalar("alpha", FLOAT64)
    with b.loop("i", 0, n) as i:
        b.assign(Z[i], Z[i] + alpha * P[i])
        b.assign(P[i], Q[i] + alpha * P[i])
    return b.build()


# -- branchy (control-flow) -------------------------------------------------------
#
# The predication family: every kernel's inner loop carries an if/else
# region (or a guarded update) that if-conversion must flatten before
# any SLP stage sees it. Conditions split within the simulator's
# uniform(1, 2) initial value range so both branch outcomes actually
# occur at runtime. BENCH_predication.json pins their vectorization
# metrics.


def _clamp_stencil(n: int) -> Program:
    """3-point average clamped to the centre value: the stencil
    statements pack like dealII's, and the clamp if-converts to one
    vselect pack per superword."""
    b = ProgramBuilder("clamp_stencil")
    U = b.array("U", (4 * n + 8,), FLOAT64)
    C = b.array("C", (4 * n + 8,), FLOAT64)
    s = b.scalar("s", FLOAT64)
    with b.loop("i", 1, n + 1) as i:
        b.assign(s, (U[i - 1] + U[i + 1]) * 0.5)
        with b.if_(s > U[i]):
            b.assign(C[i], U[i])
        with b.else_():
            b.assign(C[i], s)
    return b.build()


def _piecewise_poly(n: int) -> Program:
    """Two-piece polynomial evaluation: equal-length branches over the
    same target — the pure select-merge shape."""
    b = ProgramBuilder("piecewise_poly")
    X = b.array("X", (4 * n,), FLOAT64)
    Y = b.array("Y", (4 * n,), FLOAT64)
    with b.loop("i", 0, n) as i:
        with b.if_(X[i] < 1.5):
            b.assign(Y[i], X[i] * 0.5 + 0.25)
        with b.else_():
            b.assign(Y[i], X[i] * 2.0 - 1.5)
    return b.build()


def _masked_sum(n: int) -> Program:
    """Guarded accumulate with no else branch: the masked-update shape,
    where the converted select re-reads the target lane."""
    b = ProgramBuilder("masked_sum")
    A = b.array("A", (4 * n,), FLOAT64)
    Bv = b.array("B", (4 * n,), FLOAT64)
    ACC = b.array("ACC", (4 * n,), FLOAT64)
    with b.loop("i", 0, n) as i:
        with b.if_(A[i] > Bv[i]):
            b.assign(ACC[i], ACC[i] + (A[i] - Bv[i]))
    return b.build()


def _absdiff(n: int) -> Program:
    """|A - B| via a branch (the branchy idiom compilers if-convert in
    SAD loops): select-merge with mirrored subtractions."""
    b = ProgramBuilder("absdiff")
    A = b.array("A", (4 * n,), FLOAT64)
    Bv = b.array("B", (4 * n,), FLOAT64)
    D = b.array("D", (4 * n,), FLOAT64)
    with b.loop("i", 0, n) as i:
        with b.if_(A[i] > Bv[i]):
            b.assign(D[i], A[i] - Bv[i])
        with b.else_():
            b.assign(D[i], Bv[i] - A[i])
    return b.build()


# -- registry -----------------------------------------------------------------------

SPEC_KERNELS: List[Kernel] = [
    Kernel("cactusADM", "SPEC2006", "Solving the Einstein evolution equations", _cactusadm),
    Kernel("soplex", "SPEC2006", "Linear programming solver using simplex algorithm", _soplex),
    Kernel("lbm", "SPEC2006", "Lattice Boltzmann method", _lbm),
    Kernel("milc", "SPEC2006", "Simulations of 3-D SU(3) lattice gauge theory", _milc),
    Kernel("povray", "SPEC2006", "Ray-tracing: a rendering technique", _povray),
    Kernel("gromacs", "SPEC2006", "Performing molecular dynamics", _gromacs),
    Kernel("calculix", "SPEC2006", "Setting up finite element equations and solving them", _calculix),
    Kernel("dealII", "SPEC2006", "Object oriented finite element software library", _dealii),
    Kernel("wrf", "SPEC2006", "Weather research and forecasting", _wrf),
    Kernel("namd", "SPEC2006", "Simulation of large biomolecular systems", _namd),
]

NAS_KERNELS: List[Kernel] = [
    Kernel("ua", "NAS", "Unstructured adaptive 3-D", _ua),
    Kernel("ft", "NAS", "Fast fourier transform (FFT)", _ft),
    Kernel("bt", "NAS", "Block tridiagonal", _bt),
    Kernel("sp", "NAS", "Scalar pentadiagonal", _sp),
    Kernel("mg", "NAS", "Multigrid to solve the 3-D poisson PDE", _mg),
    Kernel("cg", "NAS", "Conjugate gradient", _cg),
]

BRANCHY_KERNELS: List[Kernel] = [
    Kernel("clamp_stencil", "branchy", "3-point stencil clamped to the centre value", _clamp_stencil),
    Kernel("piecewise_poly", "branchy", "Two-piece polynomial selected per element", _piecewise_poly),
    Kernel("masked_sum", "branchy", "Guarded accumulate into an array target", _masked_sum),
    Kernel("absdiff", "branchy", "Branchy absolute difference (SAD idiom)", _absdiff),
]

ALL_KERNELS: List[Kernel] = SPEC_KERNELS + NAS_KERNELS + BRANCHY_KERNELS

KERNELS: Dict[str, Kernel] = {k.name: k for k in ALL_KERNELS}


def build_kernel(name: str, n: int = 0) -> Program:
    """Build one benchmark program by Table 3 name."""
    return KERNELS[name].build(n)
