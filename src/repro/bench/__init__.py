"""Workloads (Table 3) and the evaluation harness."""

from ..vm.machine import amd_phenom_ii, intel_dunnington
from .kernels import (
    ALL_KERNELS,
    KERNELS,
    Kernel,
    NAS_KERNELS,
    SPEC_KERNELS,
    build_kernel,
)
from ..store import ArtifactStore
from .optimality import (
    check_optimality,
    optimality_metrics,
    write_optimality_baseline,
)
from .suite import (
    DEFAULT_VARIANTS,
    CompileCache,
    KernelResult,
    VariantRun,
    ascii_table,
    percent,
    run_kernel,
    run_multicore,
    run_suite,
)

__all__ = [
    "ALL_KERNELS",
    "ArtifactStore",
    "CompileCache",
    "DEFAULT_VARIANTS",
    "KERNELS",
    "Kernel",
    "KernelResult",
    "NAS_KERNELS",
    "SPEC_KERNELS",
    "VariantRun",
    "amd_phenom_ii",
    "ascii_table",
    "build_kernel",
    "check_optimality",
    "intel_dunnington",
    "optimality_metrics",
    "percent",
    "run_kernel",
    "run_multicore",
    "run_suite",
    "write_optimality_baseline",
]
