"""Workloads (Table 3) and the evaluation harness."""

from ..vm.machine import amd_phenom_ii, intel_dunnington
from .kernels import (
    ALL_KERNELS,
    BRANCHY_KERNELS,
    KERNELS,
    Kernel,
    NAS_KERNELS,
    SPEC_KERNELS,
    build_kernel,
)
from .predication import (
    check_predication,
    predication_metrics,
    write_predication_baseline,
)
from ..store import ArtifactStore
from .optimality import (
    check_optimality,
    optimality_metrics,
    write_optimality_baseline,
)
from .suite import (
    DEFAULT_VARIANTS,
    CompileCache,
    KernelResult,
    VariantRun,
    ascii_table,
    percent,
    run_kernel,
    run_multicore,
    run_suite,
)

__all__ = [
    "ALL_KERNELS",
    "ArtifactStore",
    "BRANCHY_KERNELS",
    "CompileCache",
    "DEFAULT_VARIANTS",
    "KERNELS",
    "Kernel",
    "KernelResult",
    "NAS_KERNELS",
    "SPEC_KERNELS",
    "VariantRun",
    "amd_phenom_ii",
    "ascii_table",
    "build_kernel",
    "check_optimality",
    "check_predication",
    "intel_dunnington",
    "optimality_metrics",
    "percent",
    "predication_metrics",
    "run_kernel",
    "run_multicore",
    "run_suite",
    "write_optimality_baseline",
    "write_predication_baseline",
]
