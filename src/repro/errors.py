"""The structured error and diagnostics API for the whole framework.

Every failure the compiler, verifier, or simulator can produce is a
:class:`ReproError` carrying *where* it happened: the pipeline ``stage``
(``parse``, ``ir``, ``group``, ``schedule``, ``layout``, ``codegen``,
``plan``, ``simulate``), the basic-``block`` label (``b0``, ``b1``, ...
— the same labels the tracer uses), and optionally the ``provenance``
ID of the compile-time decision involved. Subclasses keep the builtin
exception types they historically were (``ParseError`` is still a
``ValueError``, the scheduler's cycle error is still a
``RuntimeError``), so existing ``except`` clauses and tests keep
working while new code can catch the whole family with one
``except ReproError``.

Failures that should not abort a run travel as :class:`Diagnostic`
values instead of exceptions: ``CompilerOptions(on_error="fallback")``
converts any per-block error into a diagnostic plus a scalar fallback
for that block, and ``CompileResult.diagnostics`` /
``run_suite``'s aggregation carry them to the caller.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Dict, Optional


def _rebuild(cls, message, stage, block, provenance, rule):
    err = cls(message)
    err.stage = stage
    err.block = block
    err.provenance = provenance
    err.rule = rule
    return err


class ReproError(Exception):
    """Base of every framework error.

    Attributes:
        stage: pipeline stage the failure belongs to, if known.
        block: basic-block label (``b<position>``), if per-block.
        provenance: decision provenance ID (``b0:S1+S2``), if any.
        rule: machine-readable identifier of the violated invariant
            (set by the verifier, e.g. ``"schedule.dependence"``).
    """

    #: Default stage stamped on instances that don't set one.
    default_stage: Optional[str] = None

    def __init__(
        self,
        message: str,
        *,
        stage: Optional[str] = None,
        block: Optional[str] = None,
        provenance: Optional[str] = None,
        rule: Optional[str] = None,
    ):
        super().__init__(message)
        self.message = message
        self.stage = stage if stage is not None else self.default_stage
        self.block = block
        self.provenance = provenance
        self.rule = rule

    def with_context(
        self,
        stage: Optional[str] = None,
        block: Optional[str] = None,
        provenance: Optional[str] = None,
    ) -> "ReproError":
        """Fill in missing location context (never overwrites); returns
        self so raise sites can re-raise in one expression."""
        if self.stage is None:
            self.stage = stage
        if self.block is None:
            self.block = block
        if self.provenance is None:
            self.provenance = provenance
        return self

    def __str__(self) -> str:
        context = ", ".join(
            f"{name}={value}"
            for name, value in (
                ("stage", self.stage),
                ("block", self.block),
                ("provenance", self.provenance),
                ("rule", self.rule),
            )
            if value is not None
        )
        return f"{self.message} [{context}]" if context else self.message

    def __reduce__(self):
        # Exception's default pickling replays __init__(*args); keep the
        # context attributes alive across the worker-pool boundary.
        return (
            _rebuild,
            (
                type(self),
                self.message,
                self.stage,
                self.block,
                self.provenance,
                self.rule,
            ),
        )


def _rebuild_parse_error(message, stage, block, provenance, rule, line, column):
    err = ParseError(message, line=line, column=column)
    err.stage = stage
    err.block = block
    err.provenance = provenance
    err.rule = rule
    return err


class ParseError(ReproError, ValueError):
    """Malformed DSL input, with source line/column context.

    ``line`` and ``column`` are 1-based positions of the offending
    token when the tokenizer could locate it (``None`` for errors
    raised before tokenization or at end of input).
    """

    default_stage = "parse"

    def __init__(
        self,
        message: str,
        *,
        line: Optional[int] = None,
        column: Optional[int] = None,
        **kwargs,
    ):
        super().__init__(message, **kwargs)
        self.line = line
        self.column = column

    def __str__(self) -> str:
        rendered = super().__str__()
        if self.line is not None:
            return f"line {self.line}:{self.column}: {rendered}"
        return rendered

    def __reduce__(self):
        return (
            _rebuild_parse_error,
            (
                self.message,
                self.stage,
                self.block,
                self.provenance,
                self.rule,
                self.line,
                self.column,
            ),
        )


class IRError(ReproError, ValueError):
    """Structurally invalid IR construction (bad declaration, duplicate
    sid, malformed loop, ...)."""

    default_stage = "ir"


class IRTypeError(IRError, TypeError):
    """An IR construction mixing incompatible operand types."""


class StatementLookupError(IRError, KeyError):
    """A sid that does not name a statement of the block."""

    def __str__(self) -> str:  # KeyError.__str__ repr()s args; don't
        return ReproError.__str__(self)


class BuilderError(IRError, RuntimeError):
    """ProgramBuilder misuse (e.g. build() inside an open loop scope)."""


class OptionsError(ReproError, ValueError):
    """An unknown knob value (engine, decision mode, checks spec...)."""

    default_stage = "options"


class VerifyError(ReproError, ValueError):
    """A pipeline invariant violated, caught by :mod:`repro.verify`.

    ``stage`` names the verified stage (``ir``, ``schedule``, ``plan``)
    and ``rule`` the specific invariant (``schedule.complete``,
    ``plan.register-live``, ...).
    """


class ScheduleError(ReproError, ValueError):
    """An invalid grouping or scheduling result."""

    default_stage = "schedule"


class ScheduleCycleError(ScheduleError, RuntimeError):
    """A dependence cycle that scheduling could not break."""


class LayoutError(ReproError, ValueError):
    """The data-layout stage rejected or mishandled a transformation."""

    default_stage = "layout"


class CodegenError(ReproError, ValueError):
    """Code generation produced or detected an inconsistent state."""

    default_stage = "codegen"


class SimulationError(ReproError, ValueError):
    """The virtual machine was asked to do something it cannot."""

    default_stage = "simulate"


class ServiceError(ReproError):
    """A compile-service failure (transport, protocol, or a worker the
    service could not recover). Raised client-side with the structured
    context the server shipped over the wire."""

    default_stage = "service"


class ServiceBusyError(ServiceError):
    """The server shed this request under backpressure (HTTP 429).

    ``retry_after`` is the server's suggested back-off in seconds."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after

    def __reduce__(self):
        return (ServiceBusyError, (self.message, self.retry_after))


class WorkerCrashError(ServiceError, RuntimeError):
    """A pool worker died mid-job and the single transparent retry died
    too; the job is reported failed with this structured diagnostic
    instead of a hung client or a raw traceback."""


class SuiteError(ReproError):
    """One or more kernels of a suite run failed.

    Raised by ``run_suite`` *after* every job has finished, so a single
    bad kernel no longer destroys the results (and tracebacks) of the
    rest. ``failures`` maps kernel name to its formatted traceback.
    """

    def __init__(self, failures: Dict[str, str]):
        names = ", ".join(sorted(failures))
        super().__init__(
            f"{len(failures)} kernel(s) failed: {names}", stage="suite"
        )
        self.failures = dict(failures)

    def __reduce__(self):
        return (SuiteError, (self.failures,))


@dataclass(frozen=True)
class Diagnostic:
    """One recoverable failure, recorded instead of raised.

    ``action`` says what the compiler did about it: ``"fallback"`` (the
    block was compiled scalar), ``"skipped"`` (an optional stage was
    skipped for the block), or ``"note"``.
    """

    stage: str
    block: Optional[str]
    error: str              # exception class name
    message: str
    action: str = "fallback"
    provenance: Optional[str] = None
    rule: Optional[str] = None

    @staticmethod
    def from_error(
        exc: BaseException,
        stage: Optional[str] = None,
        block: Optional[str] = None,
        action: str = "fallback",
    ) -> "Diagnostic":
        return Diagnostic(
            stage=stage
            or getattr(exc, "stage", None)
            or "compile",
            block=getattr(exc, "block", None) or block,
            error=type(exc).__name__,
            message=getattr(exc, "message", None) or str(exc),
            action=action,
            provenance=getattr(exc, "provenance", None),
            rule=getattr(exc, "rule", None),
        )

    def __str__(self) -> str:
        where = f" in {self.block}" if self.block else ""
        return (
            f"[{self.stage}{where}] {self.error}: {self.message}"
            f" -> {self.action}"
        )


def format_failure(exc: BaseException) -> str:
    """A worker-safe formatted traceback for aggregation."""
    return "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )


__all__ = [
    "BuilderError",
    "CodegenError",
    "Diagnostic",
    "IRError",
    "IRTypeError",
    "LayoutError",
    "OptionsError",
    "ParseError",
    "ReproError",
    "ScheduleCycleError",
    "ScheduleError",
    "ServiceBusyError",
    "ServiceError",
    "SimulationError",
    "StatementLookupError",
    "SuiteError",
    "VerifyError",
    "WorkerCrashError",
    "format_failure",
]
