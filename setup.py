"""Shim for environments whose pip/setuptools cannot build PEP 660
editable wheels (no `wheel` package available offline).

`pip install -e .` falls back to `setup.py develop` when this file
exists; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
